package harden

import (
	"bytes"
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/funcsim"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
	"gpurel/internal/sim"
)

func TestSetBasics(t *testing.T) {
	s := NewSet("K3", "K1", "K3", "", "K1")
	if got := s.Canonical(); got != "K1+K3" {
		t.Errorf("Canonical() = %q, want K1+K3", got)
	}
	if s.Size() != 2 || !s.Has("K1") || !s.Has("K3") || s.Has("K2") {
		t.Errorf("membership broken: %+v", s.Names())
	}
	if !NewSet().Empty() || s.Empty() {
		t.Error("Empty() broken")
	}
	if (Set{}).Canonical() != "" {
		t.Error("zero set must have empty canonical form")
	}
}

// twoKernelJob builds K1: out[i] = 2*in[i]; K2: out2[i] = out[i] + 5, the
// minimal pipeline where a proper subset of kernels can be protected.
func twoKernelJob(n int) *device.Job {
	b := kasm.New("sel_k1")
	i := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	p := b.P()
	b.ISetpI(p, isa.CmpLT, i, int32(n))
	b.If(p, false, func() {
		v := b.Ldg(b.IScAdd(i, b.Param(0), 2), 0)
		b.Stg(b.IScAdd(i, b.Param(1), 2), 0, b.IAdd(v, v))
	})
	b.FreeP(p)
	k1 := b.MustBuild()

	b2 := kasm.New("sel_k2")
	i2 := b2.IMad(b2.S2R(isa.SRCtaIDX), b2.S2R(isa.SRNTidX), b2.S2R(isa.SRTidX))
	p2 := b2.P()
	b2.ISetpI(p2, isa.CmpLT, i2, int32(n))
	b2.If(p2, false, func() {
		v := b2.Ldg(b2.IScAdd(i2, b2.Param(0), 2), 0)
		b2.Stg(b2.IScAdd(i2, b2.Param(1), 2), 0, b2.IAddI(v, 5))
	})
	b2.FreeP(p2)
	k2 := b2.MustBuild()

	m := device.NewMemory(1 << 18)
	in := m.Alloc("in", 4*n)
	out := m.Alloc("out", 4*n)
	out2 := m.Alloc("out2", 4*n)
	vals := make([]uint32, n)
	for k := range vals {
		vals[k] = uint32(k + 1)
	}
	m.WriteU32s(in, vals)
	return &device.Job{
		Name: "twok", Mem: m,
		Steps: []device.Step{
			{Launch: &device.Launch{
				Kernel: k1, KernelName: "K1", GridX: 2, GridY: 1, BlockX: n / 2, BlockY: 1,
				Params: []uint32{in, out}, ParamIsPtr: []bool{true, true},
			}},
			{Launch: &device.Launch{
				Kernel: k2, KernelName: "K2", GridX: 2, GridY: 1, BlockX: n / 2, BlockY: 1,
				Params: []uint32{out, out2}, ParamIsPtr: []bool{true, true},
			}},
		},
		Outputs: []device.Output{{Name: "out2", Addr: out2, Size: uint32(4 * n)}},
	}
}

func TestSelectiveEmptySetIsOriginal(t *testing.T) {
	job := twoKernelJob(64)
	if got := Selective(job, NewSet()); got != job {
		t.Error("empty protection set must return the original job unchanged")
	}
}

func TestSelectiveFullSetIsTMR(t *testing.T) {
	job := twoKernelJob(64)
	h := Selective(job, NewSet("K1", "K2"))
	want := TMR(job)
	if h.Name != want.Name {
		t.Errorf("full-set Selective must delegate to TMR: name %q != %q", h.Name, want.Name)
	}
	if len(h.Steps) != len(want.Steps) || h.DUEFlag != want.DUEFlag || h.MaxSteps != want.MaxSteps {
		t.Error("full-set Selective job differs structurally from TMR")
	}
	a := funcsim.Run(h, funcsim.Options{})
	b := funcsim.Run(want, funcsim.Options{})
	if a.Err != nil || b.Err != nil || !bytes.Equal(a.Output, b.Output) {
		t.Errorf("full-set Selective output differs from TMR: %v %v", a.Err, b.Err)
	}
}

// TestSelectivePreservesOutput: protecting either proper subset must leave
// the fault-free output bit-identical to the plain job, on both simulators.
func TestSelectivePreservesOutput(t *testing.T) {
	job := twoKernelJob(64)
	plain := funcsim.Run(job, funcsim.Options{})
	if plain.Err != nil {
		t.Fatal(plain.Err)
	}
	for _, set := range []Set{NewSet("K1"), NewSet("K2")} {
		h := Selective(job, set)
		if h == job {
			t.Fatalf("proper subset %q must transform the job", set.Canonical())
		}
		r := funcsim.Run(h, funcsim.Options{})
		if r.Err != nil {
			t.Fatalf("%s: %v", set.Canonical(), r.Err)
		}
		if r.DUEFlag {
			t.Errorf("%s: fault-free selective run raised the DUE flag", set.Canonical())
		}
		if !bytes.Equal(r.Output, plain.Output) {
			t.Errorf("%s: selective hardening changed fault-free output", set.Canonical())
		}
		rs := sim.Run(h, gpu.Volta(), sim.Options{})
		if rs.Err != nil || !bytes.Equal(rs.Output, plain.Output) {
			t.Errorf("%s: output differs on the cycle simulator: %v", set.Canonical(), rs.Err)
		}
	}
}

// selStride infers the replication stride from the first triplicated launch.
func selStride(t *testing.T, h *device.Job) uint32 {
	t.Helper()
	for _, st := range h.Steps {
		if st.Launch != nil && st.Launch.Replicas == 3 {
			return st.Launch.ReplicaParams[1][0] - st.Launch.ReplicaParams[0][0]
		}
	}
	t.Fatal("no triplicated launch found")
	return 0
}

// wrapHost prefixes the host step at index i with a corruption callback,
// without shifting step indices (the transform's jump targets are absolute).
func wrapHost(t *testing.T, h *device.Job, i int, pre func(*device.Memory)) {
	t.Helper()
	if i >= len(h.Steps) || h.Steps[i].Host == nil {
		t.Fatalf("step %d is not a host step", i)
	}
	orig := h.Steps[i].Host
	h.Steps[i].Host = func(m *device.Memory, off uint32) int {
		pre(m)
		return orig(m, off)
	}
}

// TestSelectiveMergeCorrectsSingleCopy: with K1 protected, corrupting one
// replica of K1's result before the region-exit merge must be outvoted.
func TestSelectiveMergeCorrectsSingleCopy(t *testing.T) {
	job := twoKernelJob(64)
	plain := funcsim.Run(job, funcsim.Options{})
	h := Selective(job, NewSet("K1"))
	stride := selStride(t, h)
	out := job.Steps[1].Launch.Params[0] // K1's output buffer = K2's input
	// Schedule: [entry guard, K1×3, exit guard, K2, final guard, vote].
	// Corrupt copy 1's intermediate inside the exit guard, pre-merge.
	wrapHost(t, h, 2, func(m *device.Memory) {
		m.PokeU32(out+stride, 0xDEAD)
	})
	r := funcsim.Run(h, funcsim.Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.DUEFlag {
		t.Error("single-replica corruption must be outvoted, not flagged")
	}
	if !bytes.Equal(r.Output, plain.Output) {
		t.Error("region-exit merge failed to correct a single corrupted replica")
	}
}

// TestSelectiveMergeFlagsThreeWayDisagreement: all three replicas differing
// at the region exit must raise the DUE flag.
func TestSelectiveMergeFlagsThreeWayDisagreement(t *testing.T) {
	job := twoKernelJob(64)
	h := Selective(job, NewSet("K1"))
	stride := selStride(t, h)
	out := job.Steps[1].Launch.Params[0]
	wrapHost(t, h, 2, func(m *device.Memory) {
		m.PokeU32(out, 0x1111)
		m.PokeU32(out+stride, 0x2222)
	})
	r := funcsim.Run(h, funcsim.Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.DUEFlag {
		t.Error("three-way disagreement at the region exit must raise the DUE flag")
	}
}

// TestSelectiveTailRegionVotesOnGPU: with the tail kernel protected, the
// schedule ends diverged and the GPU voter must both correct a single
// corrupted copy and flag a three-way disagreement — TMR post-processing
// semantics for the final region.
func TestSelectiveTailRegionVotesOnGPU(t *testing.T) {
	job := twoKernelJob(64)
	plain := funcsim.Run(job, funcsim.Options{})
	build := func(pre func(m *device.Memory, stride uint32)) *funcsim.Result {
		h := Selective(job, NewSet("K2"))
		stride := selStride(t, h)
		// Schedule: [exit guard, K1, entry guard, K2×3, final guard, vote].
		wrapHost(t, h, 4, func(m *device.Memory) { pre(m, stride) })
		return funcsim.Run(h, funcsim.Options{})
	}
	out2 := job.Outputs[0].Addr

	r := build(func(m *device.Memory, stride uint32) { m.PokeU32(out2+2*stride, 0xBEEF) })
	if r.Err != nil || r.DUEFlag || !bytes.Equal(r.Output, plain.Output) {
		t.Errorf("GPU vote failed to correct a single corrupted tail replica: err=%v due=%v", r.Err, r.DUEFlag)
	}

	r = build(func(m *device.Memory, stride uint32) {
		m.PokeU32(out2, 0x1111)
		m.PokeU32(out2+stride, 0x2222)
	})
	if r.Err != nil || !r.DUEFlag {
		t.Errorf("GPU vote must flag a three-way tail disagreement: err=%v due=%v", r.Err, r.DUEFlag)
	}
}

// TestSelectiveUnprotectedStaysVulnerable: corrupting the result of the
// UNprotected kernel must remain a silent corruption — selective hardening
// must not accidentally mask faults outside the protection set.
func TestSelectiveUnprotectedStaysVulnerable(t *testing.T) {
	job := twoKernelJob(64)
	plain := funcsim.Run(job, funcsim.Options{})
	h := Selective(job, NewSet("K1"))
	out2 := job.Outputs[0].Addr
	// Corrupt copy 0's final output inside the final guard: K2 is
	// unprotected, so nothing may vote this away.
	wrapHost(t, h, 4, func(m *device.Memory) {
		m.PokeU32(out2, 0xBAD)
	})
	r := funcsim.Run(h, funcsim.Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.DUEFlag {
		t.Error("unprotected-kernel corruption must not be detected")
	}
	if bytes.Equal(r.Output, plain.Output) {
		t.Error("unprotected-kernel corruption must reach the output (SDC)")
	}
}

// TestSelectiveHostLoop: a data-dependent host loop jumping back across a
// protected region must converge with remapped jump targets.
func TestSelectiveHostLoop(t *testing.T) {
	m := device.NewMemory(1 << 16)
	cnt := m.Alloc("cnt", 4)
	res := m.Alloc("res", 4)
	b := kasm.New("sel_inc")
	p := b.P()
	b.ISetpI(p, isa.CmpEQ, b.S2R(isa.SRTidX), 0)
	b.If(p, false, func() {
		a := b.Param(0)
		b.Stg(a, 0, b.IAddI(b.Ldg(a, 0), 1))
	})
	b.FreeP(p)
	inc := b.MustBuild()

	b2 := kasm.New("sel_copy")
	p2 := b2.P()
	b2.ISetpI(p2, isa.CmpEQ, b2.S2R(isa.SRTidX), 0)
	b2.If(p2, false, func() {
		b2.Stg(b2.Param(1), 0, b2.IAddI(b2.Ldg(b2.Param(0), 0), 10))
	})
	b2.FreeP(p2)
	cp := b2.MustBuild()

	job := &device.Job{
		Name: "selloop", Mem: m,
		Steps: []device.Step{
			{Launch: &device.Launch{Kernel: inc, KernelName: "K1",
				GridX: 1, GridY: 1, BlockX: 32, BlockY: 1,
				Params: []uint32{cnt}, ParamIsPtr: []bool{true}}},
			{Host: func(mm *device.Memory, off uint32) int {
				if mm.PeekU32(cnt+off) < 3 {
					return 0
				}
				return -1
			}},
			{Launch: &device.Launch{Kernel: cp, KernelName: "K2",
				GridX: 1, GridY: 1, BlockX: 32, BlockY: 1,
				Params: []uint32{cnt, res}, ParamIsPtr: []bool{true, true}}},
		},
		Outputs: []device.Output{{Name: "res", Addr: res, Size: 4}},
	}
	for _, set := range []Set{NewSet("K1"), NewSet("K2")} {
		h := Selective(job, set)
		r := funcsim.Run(h, funcsim.Options{})
		if r.Err != nil || r.TimedOut {
			t.Fatalf("%s: selective loop failed: %v timeout=%v", set.Canonical(), r.Err, r.TimedOut)
		}
		if r.DUEFlag {
			t.Errorf("%s: fault-free selective loop must not flag", set.Canonical())
		}
		if r.Output[0] != 13 {
			t.Errorf("%s: loop result = %d, want 13", set.Canonical(), r.Output[0])
		}
	}
}

func TestSelectiveRejectsReplicatedJob(t *testing.T) {
	job := twoKernelJob(64)
	h := Selective(job, NewSet("K1"))
	defer func() {
		if recover() == nil {
			t.Error("selective hardening of a replicated job must panic")
		}
	}()
	Selective(h, NewSet("K2"))
}
