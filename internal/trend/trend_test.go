package trend

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCompareBasic(t *testing.T) {
	names := []string{"A", "B", "C"}
	x := map[string]float64{"A": 1, "B": 2, "C": 3}
	yConsistent := map[string]float64{"A": 10, "B": 20, "C": 30}
	c, o, pairs := Compare(names, x, yConsistent)
	if c != 3 || o != 0 {
		t.Errorf("fully consistent: %d/%d", c, o)
	}
	if len(pairs) != 3 {
		t.Errorf("3 names → 3 pairs, got %d", len(pairs))
	}

	yOpposite := map[string]float64{"A": 30, "B": 20, "C": 10}
	c, o, _ = Compare(names, x, yOpposite)
	if c != 0 || o != 3 {
		t.Errorf("fully opposite: %d/%d", c, o)
	}
}

func TestCompareTiesAreConsistent(t *testing.T) {
	names := []string{"A", "B"}
	x := map[string]float64{"A": 1, "B": 1}
	y := map[string]float64{"A": 5, "B": 9}
	c, o, _ := Compare(names, x, y)
	if c != 1 || o != 0 {
		t.Errorf("tie must count as consistent: %d/%d", c, o)
	}
}

// TestComparePairCount: n items always produce n(n-1)/2 pairs, and
// consistent+opposite covers all of them.
func TestComparePairCount(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) > 20 {
			vals = vals[:20]
		}
		names := make([]string, len(vals))
		x := map[string]float64{}
		y := map[string]float64{}
		for i, v := range vals {
			names[i] = string(rune('a' + i))
			x[names[i]] = v
			y[names[i]] = -v
		}
		c, o, pairs := Compare(names, x, y)
		n := len(vals)
		return c+o == n*(n-1)/2 && len(pairs) == c+o
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCompareSymmetry: swapping the two metrics keeps the classification.
func TestCompareSymmetry(t *testing.T) {
	names := []string{"A", "B", "C", "D"}
	x := map[string]float64{"A": 1, "B": 5, "C": 2, "D": 9}
	y := map[string]float64{"A": 4, "B": 1, "C": 8, "D": 2}
	c1, o1, _ := Compare(names, x, y)
	c2, o2, _ := Compare(names, y, x)
	if c1 != c2 || o1 != o2 {
		t.Errorf("asymmetric comparison: %d/%d vs %d/%d", c1, o1, c2, o2)
	}
}

func TestNormalize(t *testing.T) {
	a, b := Normalize(3, 1)
	if a != 0.75 || b != 0.25 {
		t.Errorf("Normalize(3,1) = %v, %v", a, b)
	}
	a, b = Normalize(0, 0)
	if a != 0.5 || b != 0.5 {
		t.Errorf("Normalize(0,0) = %v, %v (both-zero must read as equal)", a, b)
	}
}

// TestNormalizeProperty: results are complementary and ordered like inputs.
func TestNormalizeProperty(t *testing.T) {
	f := func(x, y float64) bool {
		a, b := math.Abs(x), math.Abs(y)
		if math.IsNaN(a) || math.IsNaN(b) || a > 1e300 || b > 1e300 {
			// metric values are finite, non-negative and far below overflow
			return true
		}
		na, nb := Normalize(a, b)
		if math.IsNaN(na) {
			return false
		}
		if math.Abs(na+nb-1) > 1e-9 {
			return false
		}
		return (a >= b) == (na >= nb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMetricRow(t *testing.T) {
	m := Metric{Name: "Occupancy", A: 1, B: 3}
	row := m.NormalizedRow()
	if row == "" {
		t.Error("empty row")
	}
}
