// Package trend implements the paper's relative-vulnerability comparisons:
// pairwise consistent/opposite trend classification between two metrics over
// the same workloads (Table I) and the pairwise normalisation used for the
// resource-utilisation indicator study (Figure 3, §III-C).
package trend

import "fmt"

// Pair is one compared workload pair and whether the two metrics rank it the
// same way.
type Pair struct {
	A, B       string
	Consistent bool
}

// Compare classifies every unordered pair of items: a pair is consistent
// when metric X and metric Y order it the same way (ties count as
// consistent — neither metric contradicts the other).
func Compare(names []string, x, y map[string]float64) (consistent, opposite int, pairs []Pair) {
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			sx := sign(x[names[i]] - x[names[j]])
			sy := sign(y[names[i]] - y[names[j]])
			ok := sx == sy || sx == 0 || sy == 0
			if ok {
				consistent++
			} else {
				opposite++
			}
			pairs = append(pairs, Pair{A: names[i], B: names[j], Consistent: ok})
		}
	}
	return
}

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// Normalize returns the pairwise normalisation of §III-C:
// Norm(a) = a/(a+b), Norm(b) = b/(a+b); 50% means the two kernels have the
// same value of the metric.
func Normalize(a, b float64) (float64, float64) {
	if a+b == 0 {
		return 0.5, 0.5
	}
	return a / (a + b), b / (a + b)
}

// Metric is one named metric value pair for a kernel-pair comparison chart
// (one group of bars in Figure 3).
type Metric struct {
	Name string
	A, B float64
}

// NormalizedRow renders one metric as its normalised percentages.
func (m Metric) NormalizedRow() string {
	na, nb := Normalize(m.A, m.B)
	return fmt.Sprintf("%-22s %6.1f%% %6.1f%%", m.Name, 100*na, 100*nb)
}
