// Package softfi is the NVBitFI analogue: software-level statistical fault
// injection. Each experiment flips one bit of the destination register value
// of one uniformly chosen dynamic instruction of the target kernel (faults
// land only in alive, software-visible data — §II-C), then classifies the
// functional run against the golden output. Variants restrict the candidate
// set to load instructions (SVF-LD) or corrupt a single operand use (the
// transient-operand ablation of §V-B).
package softfi

import (
	"fmt"
	"math/rand"

	"gpurel/internal/device"
	"gpurel/internal/faults"
	"sort"

	"gpurel/internal/funcsim"
)

// Mode selects the injection candidate set.
type Mode uint8

// Injection modes.
const (
	// SVF: destination registers of all register-writing instructions.
	SVF Mode = iota
	// SVFLD: destination registers of load instructions only.
	SVFLD
	// SVFUse: one source-operand read, without corrupting stored state.
	SVFUse
)

func (m Mode) String() string {
	switch m {
	case SVF:
		return "SVF"
	case SVFLD:
		return "SVF-LD"
	case SVFUse:
		return "SVF-USE"
	}
	return "?"
}

// VoteKernelName mirrors microfi's constant.
const VoteKernelName = "vote"

// GoldenRun caches the fault-free functional execution.
type GoldenRun struct {
	Res *funcsim.Result
}

// Golden runs the job fault-free, collecting per-kernel candidate windows.
func Golden(job *device.Job) (*GoldenRun, error) {
	res := funcsim.Run(job, funcsim.Options{CollectWindows: true})
	if res.Err != nil {
		return nil, fmt.Errorf("golden run failed: %w", res.Err)
	}
	if res.TimedOut {
		return nil, fmt.Errorf("golden run timed out")
	}
	if res.DUEFlag {
		return nil, fmt.Errorf("golden run raised the DUE flag")
	}
	return &GoldenRun{Res: res}, nil
}

// Target selects the kernel and candidate set of an experiment.
type Target struct {
	Kernel      string // "" = whole application
	Mode        Mode
	IncludeVote bool
}

func (t Target) windows(g *GoldenRun) []funcsim.Window {
	// iterate kernels in sorted order: window order must be deterministic
	names := make([]string, 0, len(g.Res.PerKernel))
	for name := range g.Res.PerKernel {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []funcsim.Window
	for _, name := range names {
		kc := g.Res.PerKernel[name]
		if t.Kernel != "" && name != t.Kernel && !(t.IncludeVote && name == VoteKernelName) {
			continue
		}
		switch t.Mode {
		case SVF:
			out = append(out, kc.DstWindows...)
		case SVFLD:
			out = append(out, kc.LoadWindows...)
		case SVFUse:
			out = append(out, kc.UseWindows...)
		}
	}
	return out
}

// Candidates returns the number of injectable dynamic events for the target.
func (t Target) Candidates(g *GoldenRun) int64 {
	var total int64
	for _, w := range t.windows(g) {
		total += w.Len()
	}
	return total
}

func (t Target) pickIndex(g *GoldenRun, rng *rand.Rand) (int64, bool) {
	total := t.Candidates(g)
	if total <= 0 {
		return 0, false
	}
	k := rng.Int63n(total)
	for _, w := range t.windows(g) {
		if k < w.Len() {
			return w.Start + k, true
		}
		k -= w.Len()
	}
	return 0, false
}

// Inject performs one software-level injection experiment.
func Inject(job *device.Job, g *GoldenRun, t Target, rng *rand.Rand) faults.Result {
	idx, ok := t.pickIndex(g, rng)
	if !ok {
		return faults.Result{Outcome: faults.Masked, Detail: "no injection candidates"}
	}
	mode := funcsim.InjectDst
	switch t.Mode {
	case SVFLD:
		mode = funcsim.InjectDstLoad
	case SVFUse:
		mode = funcsim.InjectUse
	}
	res := funcsim.Run(job, funcsim.Options{
		MaxDynInstrs: g.Res.DynInstrs * 10,
		Inject: &funcsim.Injection{
			Mode:  mode,
			Index: idx,
			Bit:   uint8(rng.Intn(32)),
		},
	})
	return Classify(g, res)
}

// Classify compares a run against the golden functional run. The
// control-path proxy compares executed instruction counts (funcsim has no
// cycles).
func Classify(g *GoldenRun, res *funcsim.Result) faults.Result {
	switch {
	case res.TimedOut:
		return faults.Result{Outcome: faults.Timeout}
	case res.Err != nil:
		return faults.Result{Outcome: faults.DUE, Detail: res.Err.Error()}
	case res.DUEFlag:
		return faults.Result{Outcome: faults.DUE, Detail: "application-detected (TMR vote disagreement)"}
	case !bytesEqual(res.Output, g.Res.Output):
		return faults.Result{Outcome: faults.SDC}
	default:
		return faults.Result{Outcome: faults.Masked, CtrlAffected: res.DynInstrs != g.Res.DynInstrs}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
