package softfi

import (
	"fmt"
	"math/rand"
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/faults"
	"gpurel/internal/funcsim"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

func twoKernelJob(n int) *device.Job {
	mk := func(name string, addMul bool) *isa.Program {
		b := kasm.New(name)
		i := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
		p := b.P()
		b.ISetpI(p, isa.CmpLT, i, int32(n))
		b.If(p, false, func() {
			v := b.Ldg(b.IScAdd(i, b.Param(0), 2), 0)
			if addMul {
				v = b.IMulI(v, 3)
			} else {
				v = b.IAddI(v, 7)
			}
			b.Stg(b.IScAdd(i, b.Param(1), 2), 0, v)
		})
		b.FreeP(p)
		return b.MustBuild()
	}
	m := device.NewMemory(1 << 18)
	in := m.Alloc("in", 4*n)
	mid := m.Alloc("mid", 4*n)
	out := m.Alloc("out", 4*n)
	vals := make([]uint32, n)
	for k := range vals {
		vals[k] = uint32(k)
	}
	m.WriteU32s(in, vals)
	return &device.Job{
		Name: "two", Mem: m,
		Steps: []device.Step{
			{Launch: &device.Launch{Kernel: mk("k1", true), KernelName: "K1",
				GridX: 1, GridY: 1, BlockX: n, BlockY: 1,
				Params: []uint32{in, mid}, ParamIsPtr: []bool{true, true}}},
			{Launch: &device.Launch{Kernel: mk("k2", false), KernelName: "K2",
				GridX: 1, GridY: 1, BlockX: n, BlockY: 1,
				Params: []uint32{mid, out}, ParamIsPtr: []bool{true, true}}},
		},
		Outputs: []device.Output{{Name: "out", Addr: out, Size: uint32(4 * n)}},
	}
}

func TestGoldenAndWindows(t *testing.T) {
	job := twoKernelJob(64)
	g, err := Golden(job)
	if err != nil {
		t.Fatal(err)
	}
	all := Target{Mode: SVF}
	k1 := Target{Kernel: "K1", Mode: SVF}
	k2 := Target{Kernel: "K2", Mode: SVF}
	if k1.Candidates(g)+k2.Candidates(g) != all.Candidates(g) {
		t.Errorf("kernel windows must partition the candidate space: %d + %d != %d",
			k1.Candidates(g), k2.Candidates(g), all.Candidates(g))
	}
	ld := Target{Kernel: "K1", Mode: SVFLD}
	if ld.Candidates(g) <= 0 || ld.Candidates(g) >= k1.Candidates(g) {
		t.Errorf("load candidates (%d) must be a proper subset of all writes (%d)",
			ld.Candidates(g), k1.Candidates(g))
	}
}

func TestInjectTargetsRightKernel(t *testing.T) {
	job := twoKernelJob(64)
	g, _ := Golden(job)
	// every K2 injection with a low bit must corrupt only out (not crash);
	// more importantly, the outcomes must be well-formed
	tgt := Target{Kernel: "K2", Mode: SVF}
	var counts [faults.NumOutcomes]int
	for seed := int64(0); seed < 60; seed++ {
		r := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
		counts[r.Outcome]++
	}
	if counts[faults.SDC] == 0 {
		t.Error("no K2 injection caused an SDC")
	}
}

func TestInjectDeterminism(t *testing.T) {
	job := twoKernelJob(64)
	g, _ := Golden(job)
	tgt := Target{Mode: SVF}
	for seed := int64(0); seed < 10; seed++ {
		a := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
		b := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
		if a.Outcome != b.Outcome {
			t.Fatalf("seed %d: %v vs %v", seed, a.Outcome, b.Outcome)
		}
	}
}

func TestClassify(t *testing.T) {
	job := twoKernelJob(32)
	g, _ := Golden(job)
	cases := []struct {
		res  *funcsim.Result
		want faults.Outcome
	}{
		{&funcsim.Result{TimedOut: true}, faults.Timeout},
		{&funcsim.Result{Err: fmt.Errorf("x")}, faults.DUE},
		{&funcsim.Result{DUEFlag: true, Output: g.Res.Output}, faults.DUE},
		{&funcsim.Result{Output: append([]byte{9}, g.Res.Output[1:]...)}, faults.SDC},
		{&funcsim.Result{Output: g.Res.Output, DynInstrs: g.Res.DynInstrs}, faults.Masked},
	}
	for i, c := range cases {
		if got := Classify(g, c.res); got.Outcome != c.want {
			t.Errorf("case %d: %v, want %v", i, got.Outcome, c.want)
		}
	}
	r := Classify(g, &funcsim.Result{Output: g.Res.Output, DynInstrs: g.Res.DynInstrs + 3})
	if !r.CtrlAffected {
		t.Error("instruction-count deviation must flag CtrlAffected")
	}
}

func TestModeStrings(t *testing.T) {
	if SVF.String() != "SVF" || SVFLD.String() != "SVF-LD" || SVFUse.String() != "SVF-USE" {
		t.Error("mode names wrong")
	}
}
