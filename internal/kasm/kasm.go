// Package kasm is a tiny kernel assembler: an embedded DSL that builds
// isa.Program values with structured control flow. If/Else and While
// constructs are lowered to guarded branches annotated with their immediate
// post-dominator, which the simulator's SIMT divergence stack relies on.
//
// Register allocation is static: every helper that produces a value allocates
// a fresh architectural register at build time. Closures passed to control
// constructs run exactly once (they emit code), so registers allocated inside
// a loop body are ordinary static temporaries. The *To variants write into an
// existing register and are used for loop-carried values.
package kasm

import (
	"fmt"
	"math"

	"gpurel/internal/flow"
	"gpurel/internal/isa"
)

// Builder incrementally assembles a kernel program.
type Builder struct {
	name    string
	code    []isa.Instr
	nextReg int
	nextP   int
	guard   isa.Pred
	guardN  bool
	err     error
}

// New returns a Builder for a kernel with the given name.
func New(name string) *Builder {
	return &Builder{name: name, guard: isa.PT}
}

// R allocates a fresh general-purpose register.
func (b *Builder) R() isa.Reg {
	if b.nextReg >= isa.MaxRegs {
		b.fail("out of registers")
		return 0
	}
	r := isa.Reg(b.nextReg)
	b.nextReg++
	return r
}

// P allocates a fresh predicate register. Predicates are a scarce resource
// (7); kernels release them with FreeP when a scope ends.
func (b *Builder) P() isa.Pred {
	if b.nextP >= isa.NumPreds {
		b.fail("out of predicate registers")
		return isa.P0
	}
	b.nextP++
	return isa.Pred(b.nextP) // PT is 0; P0..P6 are 1..7
}

// FreeP releases the most recently allocated predicate. It must be called in
// LIFO order with respect to P.
func (b *Builder) FreeP(p isa.Pred) {
	if b.nextP == 0 || isa.Pred(b.nextP) != p {
		b.fail("FreeP out of order")
		return
	}
	b.nextP--
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("kasm %s: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Emit appends a raw instruction, applying the current guard predicate if the
// instruction does not carry its own (PT, the zero value, means unguarded).
func (b *Builder) Emit(ins isa.Instr) {
	if ins.Pred == isa.PT && !ins.PredNeg {
		ins.Pred, ins.PredNeg = b.guard, b.guardN
	}
	b.code = append(b.code, ins)
}

// Guarded executes emit under guard predicate p (negated when neg): every
// instruction emitted inside runs only on lanes where the guard holds.
// Guards do not nest.
func (b *Builder) Guarded(p isa.Pred, neg bool, emit func()) {
	if b.guard != isa.PT || b.guardN {
		b.fail("nested Guarded")
	}
	b.guard, b.guardN = p, neg
	emit()
	b.guard, b.guardN = isa.PT, false
}

func (b *Builder) alu(op isa.Op, a, src2 isa.Reg) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: op, Dst: d, SrcA: a, SrcB: src2})
	return d
}

func (b *Builder) aluTo(op isa.Op, d, a, src2 isa.Reg) {
	b.Emit(isa.Instr{Op: op, Dst: d, SrcA: a, SrcB: src2})
}

func (b *Builder) aluI(op isa.Op, a isa.Reg, imm int32) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: op, Dst: d, SrcA: a, BImm: true, Imm: imm})
	return d
}

// --- moves and constants ---

// S2R reads a special register.
func (b *Builder) S2R(s isa.SReg) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpS2R, Dst: d, Special: s})
	return d
}

// MovI materialises a 32-bit integer immediate.
func (b *Builder) MovI(v int32) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpMOVI, Dst: d, Imm: v})
	return d
}

// MovF materialises a float32 immediate.
func (b *Builder) MovF(f float32) isa.Reg {
	return b.MovI(int32(math.Float32bits(f)))
}

// Mov copies a register.
func (b *Builder) Mov(a isa.Reg) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpMOV, Dst: d, SrcA: a})
	return d
}

// MovTo copies a into d.
func (b *Builder) MovTo(d, a isa.Reg) { b.Emit(isa.Instr{Op: isa.OpMOV, Dst: d, SrcA: a}) }

// MovITo writes an integer immediate into d.
func (b *Builder) MovITo(d isa.Reg, v int32) { b.Emit(isa.Instr{Op: isa.OpMOVI, Dst: d, Imm: v}) }

// MovFTo writes a float immediate into d.
func (b *Builder) MovFTo(d isa.Reg, f float32) { b.MovITo(d, int32(math.Float32bits(f))) }

// Param loads kernel parameter word idx (the c[0x0][..] constant bank).
func (b *Builder) Param(idx int) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpLDC, Dst: d, Imm: int32(idx)})
	return d
}

// --- integer ALU ---

// IAdd returns a+b2.
func (b *Builder) IAdd(a, b2 isa.Reg) isa.Reg { return b.alu(isa.OpIADD, a, b2) }

// IAddI returns a+imm.
func (b *Builder) IAddI(a isa.Reg, imm int32) isa.Reg { return b.aluI(isa.OpIADD, a, imm) }

// IAddTo sets d = a+b2.
func (b *Builder) IAddTo(d, a, b2 isa.Reg) { b.aluTo(isa.OpIADD, d, a, b2) }

// IAddITo sets d = a+imm.
func (b *Builder) IAddITo(d, a isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.OpIADD, Dst: d, SrcA: a, BImm: true, Imm: imm})
}

// ISub returns a-b2.
func (b *Builder) ISub(a, b2 isa.Reg) isa.Reg { return b.alu(isa.OpISUB, a, b2) }

// ISubI returns a-imm.
func (b *Builder) ISubI(a isa.Reg, imm int32) isa.Reg { return b.aluI(isa.OpISUB, a, imm) }

// IMul returns a*b2 (low 32 bits).
func (b *Builder) IMul(a, b2 isa.Reg) isa.Reg { return b.alu(isa.OpIMUL, a, b2) }

// IMulI returns a*imm.
func (b *Builder) IMulI(a isa.Reg, imm int32) isa.Reg { return b.aluI(isa.OpIMUL, a, imm) }

// IMad returns a*b2+c.
func (b *Builder) IMad(a, b2, c isa.Reg) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpIMAD, Dst: d, SrcA: a, SrcB: b2, SrcC: c})
	return d
}

// IMadTo sets d = a*b2+c.
func (b *Builder) IMadTo(d, a, b2, c isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpIMAD, Dst: d, SrcA: a, SrcB: b2, SrcC: c})
}

// IScAdd returns (a<<shift)+b2, the SASS array-indexing idiom.
func (b *Builder) IScAdd(a, b2 isa.Reg, shift uint8) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpISCADD, Dst: d, SrcA: a, SrcB: b2, Imm2: shift})
	return d
}

// IMin returns min(a,b2) (signed).
func (b *Builder) IMin(a, b2 isa.Reg) isa.Reg { return b.alu(isa.OpIMIN, a, b2) }

// IMax returns max(a,b2) (signed).
func (b *Builder) IMax(a, b2 isa.Reg) isa.Reg { return b.alu(isa.OpIMAX, a, b2) }

// Shl returns a<<imm.
func (b *Builder) Shl(a isa.Reg, imm int32) isa.Reg { return b.aluI(isa.OpSHL, a, imm) }

// Shr returns a>>imm (logical).
func (b *Builder) Shr(a isa.Reg, imm int32) isa.Reg { return b.aluI(isa.OpSHR, a, imm) }

// ShrTo sets d = a>>imm (logical).
func (b *Builder) ShrTo(d, a isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.OpSHR, Dst: d, SrcA: a, BImm: true, Imm: imm})
}

// And returns a&b2.
func (b *Builder) And(a, b2 isa.Reg) isa.Reg { return b.alu(isa.OpAND, a, b2) }

// AndI returns a&imm.
func (b *Builder) AndI(a isa.Reg, imm int32) isa.Reg { return b.aluI(isa.OpAND, a, imm) }

// Or returns a|b2.
func (b *Builder) Or(a, b2 isa.Reg) isa.Reg { return b.alu(isa.OpOR, a, b2) }

// Xor returns a^b2.
func (b *Builder) Xor(a, b2 isa.Reg) isa.Reg { return b.alu(isa.OpXOR, a, b2) }

// --- float ALU ---

// FAdd returns a+b2.
func (b *Builder) FAdd(a, b2 isa.Reg) isa.Reg { return b.alu(isa.OpFADD, a, b2) }

// FAddTo sets d = a+b2.
func (b *Builder) FAddTo(d, a, b2 isa.Reg) { b.aluTo(isa.OpFADD, d, a, b2) }

// FSub returns a-b2.
func (b *Builder) FSub(a, b2 isa.Reg) isa.Reg { return b.alu(isa.OpFSUB, a, b2) }

// FMul returns a*b2.
func (b *Builder) FMul(a, b2 isa.Reg) isa.Reg { return b.alu(isa.OpFMUL, a, b2) }

// FMulTo sets d = a*b2.
func (b *Builder) FMulTo(d, a, b2 isa.Reg) { b.aluTo(isa.OpFMUL, d, a, b2) }

// FFma returns a*b2+c.
func (b *Builder) FFma(a, b2, c isa.Reg) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpFFMA, Dst: d, SrcA: a, SrcB: b2, SrcC: c})
	return d
}

// FFmaTo sets d = a*b2+c.
func (b *Builder) FFmaTo(d, a, b2, c isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpFFMA, Dst: d, SrcA: a, SrcB: b2, SrcC: c})
}

// FMin returns min(a,b2).
func (b *Builder) FMin(a, b2 isa.Reg) isa.Reg { return b.alu(isa.OpFMIN, a, b2) }

// FMax returns max(a,b2).
func (b *Builder) FMax(a, b2 isa.Reg) isa.Reg { return b.alu(isa.OpFMAX, a, b2) }

// Mufu returns the special-function result op(a).
func (b *Builder) Mufu(op isa.MufuOp, a isa.Reg) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpMUFU, Dst: d, SrcA: a, Mufu: op})
	return d
}

// Rcp returns 1/a.
func (b *Builder) Rcp(a isa.Reg) isa.Reg { return b.Mufu(isa.MufuRCP, a) }

// Sqrt returns sqrt(a).
func (b *Builder) Sqrt(a isa.Reg) isa.Reg { return b.Mufu(isa.MufuSQRT, a) }

// Ex2 returns 2^a.
func (b *Builder) Ex2(a isa.Reg) isa.Reg { return b.Mufu(isa.MufuEX2, a) }

// Lg2 returns log2(a).
func (b *Builder) Lg2(a isa.Reg) isa.Reg { return b.Mufu(isa.MufuLG2, a) }

// FDiv returns a/b2 computed as a * (1/b2), the usual SASS lowering.
func (b *Builder) FDiv(a, b2 isa.Reg) isa.Reg { return b.FMul(a, b.Rcp(b2)) }

// Expf returns e^a via EX2(a*log2(e)).
func (b *Builder) Expf(a isa.Reg) isa.Reg {
	log2e := b.MovF(float32(math.Log2E))
	return b.Ex2(b.FMul(a, log2e))
}

// Logf returns ln(a) via LG2(a)*ln(2).
func (b *Builder) Logf(a isa.Reg) isa.Reg {
	ln2 := b.MovF(float32(math.Ln2))
	return b.FMul(b.Lg2(a), ln2)
}

// I2F converts a signed integer to float32.
func (b *Builder) I2F(a isa.Reg) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpI2F, Dst: d, SrcA: a})
	return d
}

// F2I truncates a float32 to a signed integer.
func (b *Builder) F2I(a isa.Reg) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpF2I, Dst: d, SrcA: a})
	return d
}

// --- predicates and select ---

// ISetp sets p = (a cmp b2).
func (b *Builder) ISetp(p isa.Pred, cmp isa.CmpOp, a, b2 isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpISETP, PDst: p, Cmp: cmp, SrcA: a, SrcB: b2, CPred: isa.PT})
}

// ISetpI sets p = (a cmp imm).
func (b *Builder) ISetpI(p isa.Pred, cmp isa.CmpOp, a isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.OpISETP, PDst: p, Cmp: cmp, SrcA: a, BImm: true, Imm: imm, CPred: isa.PT})
}

// ISetpAnd sets p = (a cmp b2) && c, the SASS ISETP.AND form.
func (b *Builder) ISetpAnd(p isa.Pred, cmp isa.CmpOp, a, b2 isa.Reg, c isa.Pred, cNeg bool) {
	b.Emit(isa.Instr{Op: isa.OpISETP, PDst: p, Cmp: cmp, SrcA: a, SrcB: b2, CPred: c, CPredNeg: cNeg})
}

// ISetpIAnd sets p = (a cmp imm) && c.
func (b *Builder) ISetpIAnd(p isa.Pred, cmp isa.CmpOp, a isa.Reg, imm int32, c isa.Pred, cNeg bool) {
	b.Emit(isa.Instr{Op: isa.OpISETP, PDst: p, Cmp: cmp, SrcA: a, BImm: true, Imm: imm, CPred: c, CPredNeg: cNeg})
}

// FSetp sets p = (a cmp b2) for float operands.
func (b *Builder) FSetp(p isa.Pred, cmp isa.CmpOp, a, b2 isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpFSETP, PDst: p, Cmp: cmp, SrcA: a, SrcB: b2, CPred: isa.PT})
}

// Sel returns p ? a : b2.
func (b *Builder) Sel(p isa.Pred, a, b2 isa.Reg) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpSEL, Dst: d, SrcA: a, SrcB: b2, SelPred: p})
	return d
}

// SelTo sets d = p ? a : b2.
func (b *Builder) SelTo(d isa.Reg, p isa.Pred, a, b2 isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpSEL, Dst: d, SrcA: a, SrcB: b2, SelPred: p})
}

// --- memory ---

// Ldg loads global[addr+off].
func (b *Builder) Ldg(addr isa.Reg, off int32) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpLDG, Dst: d, SrcA: addr, Imm: off})
	return d
}

// LdgTo loads global[addr+off] into d.
func (b *Builder) LdgTo(d, addr isa.Reg, off int32) {
	b.Emit(isa.Instr{Op: isa.OpLDG, Dst: d, SrcA: addr, Imm: off})
}

// Stg stores v to global[addr+off].
func (b *Builder) Stg(addr isa.Reg, off int32, v isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpSTG, SrcA: addr, Imm: off, SrcB: v})
}

// Lds loads shared[addr+off].
func (b *Builder) Lds(addr isa.Reg, off int32) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpLDS, Dst: d, SrcA: addr, Imm: off})
	return d
}

// LdsTo loads shared[addr+off] into d.
func (b *Builder) LdsTo(d, addr isa.Reg, off int32) {
	b.Emit(isa.Instr{Op: isa.OpLDS, Dst: d, SrcA: addr, Imm: off})
}

// Sts stores v to shared[addr+off].
func (b *Builder) Sts(addr isa.Reg, off int32, v isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpSTS, SrcA: addr, Imm: off, SrcB: v})
}

// Ldt loads global[addr+off] through the texture path (L1T cache).
func (b *Builder) Ldt(addr isa.Reg, off int32) isa.Reg {
	d := b.R()
	b.Emit(isa.Instr{Op: isa.OpLDT, Dst: d, SrcA: addr, Imm: off})
	return d
}

// --- control flow ---

// Barrier emits a CTA-wide BAR.SYNC.
func (b *Builder) Barrier() { b.Emit(isa.Instr{Op: isa.OpBAR}) }

// Exit emits EXIT for the active lanes.
func (b *Builder) Exit() { b.Emit(isa.Instr{Op: isa.OpEXIT}) }

// If emits a structured conditional: then() runs on lanes where p holds
// (negated when neg).
func (b *Builder) If(p isa.Pred, neg bool, then func()) {
	br := len(b.code)
	// branch AROUND the then-block when the condition is false
	b.code = append(b.code, isa.Instr{Op: isa.OpBRA, Pred: p, PredNeg: !neg})
	then()
	end := len(b.code)
	b.code[br].Target = end
	b.code[br].Reconv = end
}

// IfElse emits a structured two-way conditional.
func (b *Builder) IfElse(p isa.Pred, neg bool, then, els func()) {
	br := len(b.code)
	b.code = append(b.code, isa.Instr{Op: isa.OpBRA, Pred: p, PredNeg: !neg})
	then()
	jmp := len(b.code)
	b.code = append(b.code, isa.Instr{Op: isa.OpBRA, Pred: isa.PT})
	elseStart := len(b.code)
	els()
	end := len(b.code)
	b.code[br].Target = elseStart
	b.code[br].Reconv = end
	b.code[jmp].Target = end
	b.code[jmp].Reconv = end
}

// While emits a loop. cond() emits code computing the continue predicate and
// returns it (with neg=true meaning "continue while !p"). body() emits the
// loop body.
func (b *Builder) While(cond func() (isa.Pred, bool), body func()) {
	head := len(b.code)
	p, neg := cond()
	br := len(b.code)
	// exit the loop when the continue predicate is false
	b.code = append(b.code, isa.Instr{Op: isa.OpBRA, Pred: p, PredNeg: !neg})
	body()
	b.code = append(b.code, isa.Instr{Op: isa.OpBRA, Pred: isa.PT, Target: head})
	end := len(b.code)
	b.code[br].Target = end
	b.code[br].Reconv = end
	b.code[len(b.code)-1].Reconv = end
}

// For emits the canonical counted loop: for i starting at its current value,
// while i < bound, stepping by step. The counter register must be initialised
// by the caller; it is updated in place.
func (b *Builder) For(i, bound isa.Reg, step int32, body func()) {
	p := b.P()
	b.While(func() (isa.Pred, bool) {
		b.ISetp(p, isa.CmpLT, i, bound)
		return p, false
	}, func() {
		body()
		b.IAddITo(i, i, step)
	})
	b.FreeP(p)
}

// ForI is For with an immediate bound.
func (b *Builder) ForI(i isa.Reg, bound int32, step int32, body func()) {
	p := b.P()
	b.While(func() (isa.Pred, bool) {
		b.ISetpI(p, isa.CmpLT, i, bound)
		return p, false
	}, func() {
		body()
		b.IAddITo(i, i, step)
	})
	b.FreeP(p)
}

// Build finalises the program: appends a trailing EXIT when missing,
// validates, and returns it.
func (b *Builder) Build() (*isa.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.code) == 0 || b.code[len(b.code)-1].Op != isa.OpEXIT {
		b.Exit()
	}
	p := &isa.Program{Name: b.name, Code: b.code, NumRegs: b.nextReg}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Error-severity lint findings (dead writes, reads of never-written
	// registers, unreachable code) are build failures: kernels are static, so
	// any of these is a bug in the emitting Go code, and rejecting them here
	// keeps Build and `gpudis -lint` in agreement. Warnings (e.g. a barrier
	// under a dynamically-uniform guard) are allowed through.
	if diags := flow.Lint(p); flow.HasErrors(diags) {
		msg := fmt.Sprintf("kasm: %s fails static checks:", p.Name)
		for _, d := range diags {
			if d.Sev == flow.Error {
				msg += "\n\t" + d.String()
			}
		}
		return nil, fmt.Errorf("%s", msg)
	}
	return p, nil
}

// MustBuild is Build that panics on error; kernels are static so a failure is
// a programming bug.
func (b *Builder) MustBuild() *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
