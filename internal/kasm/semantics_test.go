package kasm_test

import (
	"math"
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/funcsim"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// runKernel executes a single-CTA kernel that stores results to out[] and
// returns the output words.
func runKernel(t *testing.T, threads, smem, words int, build func(b *kasm.Builder, out isa.Reg)) []uint32 {
	t.Helper()
	b := kasm.New("semantics")
	out := b.Param(0)
	build(b, out)
	prog := b.MustBuild()
	m := device.NewMemory(1 << 16)
	buf := m.Alloc("out", 4*words)
	job := &device.Job{
		Name: "sem", Mem: m,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: prog, GridX: 1, GridY: 1, BlockX: threads, BlockY: 1,
			SmemBytes: smem,
			Params:    []uint32{buf}, ParamIsPtr: []bool{true},
		}}},
		Outputs: []device.Output{{Name: "out", Addr: buf, Size: uint32(4 * words)}},
	}
	r := funcsim.Run(job, funcsim.Options{})
	if r.Err != nil {
		t.Fatalf("kernel failed: %v", r.Err)
	}
	words32 := make([]uint32, words)
	for i := range words32 {
		words32[i] = uint32(r.Output[4*i]) | uint32(r.Output[4*i+1])<<8 |
			uint32(r.Output[4*i+2])<<16 | uint32(r.Output[4*i+3])<<24
	}
	return words32
}

// TestIntegerHelpers drives every integer helper end to end.
func TestIntegerHelpers(t *testing.T) {
	got := runKernel(t, 1, 0, 14, func(b *kasm.Builder, out isa.Reg) {
		a := b.MovI(20)
		c := b.MovI(6)
		store := func(slot int32, v isa.Reg) { b.Stg(out, 4*slot, v) }
		store(0, b.IAdd(a, c))      // 26
		store(1, b.ISub(a, c))      // 14
		store(2, b.ISubI(a, 5))     // 15
		store(3, b.IMul(a, c))      // 120
		store(4, b.IMulI(a, -2))    // -40
		store(5, b.IMad(a, c, c))   // 126
		store(6, b.IScAdd(a, c, 3)) // 20<<3+6 = 166
		store(7, b.IMin(a, c))      // 6
		store(8, b.IMax(a, c))      // 20
		store(9, b.Shl(c, 4))       // 96
		store(10, b.Shr(a, 2))      // 5
		store(11, b.And(a, c))      // 4
		store(12, b.Or(a, c))       // 22
		store(13, b.Xor(a, c))      // 18
	})
	neg40 := int32(-40)
	want := []uint32{26, 14, 15, 120, uint32(neg40), 126, 166, 6, 20, 96, 5, 4, 22, 18}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("slot %d = %d, want %d", i, int32(got[i]), int32(w))
		}
	}
}

// TestFloatHelpers drives every float helper.
func TestFloatHelpers(t *testing.T) {
	got := runKernel(t, 1, 0, 12, func(b *kasm.Builder, out isa.Reg) {
		x := b.MovF(3)
		y := b.MovF(4)
		store := func(slot int32, v isa.Reg) { b.Stg(out, 4*slot, v) }
		store(0, b.FAdd(x, y))            // 7
		store(1, b.FSub(x, y))            // -1
		store(2, b.FMul(x, y))            // 12
		store(3, b.FFma(x, y, x))         // 15
		store(4, b.FMin(x, y))            // 3
		store(5, b.FMax(x, y))            // 4
		store(6, b.FDiv(y, x))            // 4/3 via reciprocal
		store(7, b.Rcp(y))                // 0.25
		store(8, b.Sqrt(y))               // 2
		store(9, b.Ex2(x))                // 8
		store(10, b.Lg2(y))               // 2
		store(11, b.Mufu(isa.MufuRSQ, y)) // 0.5
	})
	want := []float32{7, -1, 12, 15, 3, 4, 4.0 / 3.0, 0.25, 2, 8, 2, 0.5}
	for i, w := range want {
		g := math.Float32frombits(got[i])
		if d := math.Abs(float64(g - w)); d > 1e-5 {
			t.Errorf("slot %d = %v, want %v", i, g, w)
		}
	}
}

// TestConversionsAndExpLog drives I2F/F2I and the exp/ln sugar.
func TestConversionsAndExpLog(t *testing.T) {
	got := runKernel(t, 1, 0, 4, func(b *kasm.Builder, out isa.Reg) {
		b.Stg(out, 0, b.I2F(b.MovI(-9)))
		b.Stg(out, 4, b.F2I(b.MovF(7.9)))
		b.Stg(out, 8, b.Expf(b.MovF(1)))
		b.Stg(out, 12, b.Logf(b.MovF(float32(math.E))))
	})
	if math.Float32frombits(got[0]) != -9 {
		t.Errorf("I2F = %v", math.Float32frombits(got[0]))
	}
	if int32(got[1]) != 7 {
		t.Errorf("F2I = %d", int32(got[1]))
	}
	if e := math.Float32frombits(got[2]); math.Abs(float64(e)-math.E) > 1e-4 {
		t.Errorf("Expf(1) = %v", e)
	}
	if l := math.Float32frombits(got[3]); math.Abs(float64(l)-1) > 1e-4 {
		t.Errorf("Logf(e) = %v", l)
	}
}

// TestPredicateHelpers drives ISetp variants, FSetp, Sel and Guarded.
func TestPredicateHelpers(t *testing.T) {
	got := runKernel(t, 32, 0, 4*32, func(b *kasm.Builder, out isa.Reg) {
		tid := b.S2R(isa.SRTidX)
		slot := b.IScAdd(tid, out, 2)
		p := b.P()
		q := b.P()
		// p = tid >= 8 && tid < 24  (via ISetpI then ISetpIAnd)
		b.ISetpI(p, isa.CmpGE, tid, 8)
		b.ISetpIAnd(p, isa.CmpLT, tid, 24, p, false)
		b.Stg(slot, 0, b.Sel(p, b.MovI(1), b.MovI(0)))
		// q = float compare
		b.FSetp(q, isa.CmpGT, b.I2F(tid), b.MovF(15.5))
		v := b.R() // SelTo writes it unconditionally
		b.SelTo(v, q, b.MovI(1), b.MovI(0))
		b.Stg(slot, 4*32, v)
		// guarded store: only lanes with p write the third region
		z := b.MovI(0)
		b.Stg(slot, 8*32, z)
		b.Guarded(p, false, func() {
			b.Stg(slot, 8*32, b.MovI(9))
		})
		// ISetpAnd with register operand
		r := b.P()
		b.ISetpAnd(r, isa.CmpEQ, b.AndI(tid, 1), b.MovI(0), p, false)
		b.Stg(slot, 12*32, b.Sel(r, b.MovI(1), b.MovI(0)))
		b.FreeP(r)
		b.FreeP(q)
		b.FreeP(p)
	})
	for tid := 0; tid < 32; tid++ {
		inBand := tid >= 8 && tid < 24
		if (got[tid] == 1) != inBand {
			t.Errorf("tid %d band = %d", tid, got[tid])
		}
		if (got[32+tid] == 1) != (float32(tid) > 15.5) {
			t.Errorf("tid %d fsetp = %d", tid, got[32+tid])
		}
		wantG := uint32(0)
		if inBand {
			wantG = 9
		}
		if got[64+tid] != wantG {
			t.Errorf("tid %d guarded = %d, want %d", tid, got[64+tid], wantG)
		}
		wantR := uint32(0)
		if inBand && tid%2 == 0 {
			wantR = 1
		}
		if got[96+tid] != wantR {
			t.Errorf("tid %d and-chain = %d, want %d", tid, got[96+tid], wantR)
		}
	}
}

// TestControlFlowHelpers drives IfElse, While, For and ForI together.
func TestControlFlowHelpers(t *testing.T) {
	got := runKernel(t, 32, 4*32, 2*32, func(b *kasm.Builder, out isa.Reg) {
		tid := b.S2R(isa.SRTidX)
		slot := b.IScAdd(tid, out, 2)
		p := b.P()
		b.ISetpI(p, isa.CmpLT, tid, 16)
		v := b.R()
		b.IfElse(p, false, func() {
			// sum 0..tid-1 with For
			acc := b.MovI(0)
			i := b.MovI(0)
			b.For(i, tid, 1, func() { b.IAddTo(acc, acc, i) })
			b.MovTo(v, acc)
		}, func() {
			// tid * 3 with a manual While
			acc := b.MovI(0)
			i := b.MovI(0)
			q := b.P()
			b.While(func() (isa.Pred, bool) {
				b.ISetpI(q, isa.CmpLT, i, 3)
				return q, false
			}, func() {
				b.IAddTo(acc, acc, tid)
				b.IAddITo(i, i, 1)
			})
			b.FreeP(q)
			b.MovTo(v, acc)
		})
		b.FreeP(p)
		b.Stg(slot, 0, v)

		// ForI with shared-memory exchange and MovITo/MovFTo/ShrTo coverage
		b.Sts(b.Shl(tid, 2), 0, tid)
		b.Barrier()
		sum := b.MovI(0)
		k := b.MovI(0)
		b.ForI(k, 4, 1, func() {
			idx := b.AndI(b.IAdd(tid, k), 31)
			b.IAddTo(sum, sum, b.Lds(b.Shl(idx, 2), 0))
		})
		b.Stg(slot, 4*32, sum)
	})
	for tid := 0; tid < 32; tid++ {
		var want uint32
		if tid < 16 {
			want = uint32(tid * (tid - 1) / 2)
		} else {
			want = uint32(tid * 3)
		}
		if got[tid] != want {
			t.Errorf("tid %d ifelse = %d, want %d", tid, got[tid], want)
		}
		wantSum := uint32(0)
		for k := 0; k < 4; k++ {
			wantSum += uint32((tid + k) % 32)
		}
		if got[32+tid] != wantSum {
			t.Errorf("tid %d windowed sum = %d, want %d", tid, got[32+tid], wantSum)
		}
	}
}

// TestMemoryHelperVariants drives LdgTo/LdsTo/Ldt/MovFTo/FAddTo/FMulTo/
// FFmaTo/ShrTo/IMadTo.
func TestMemoryHelperVariants(t *testing.T) {
	got := runKernel(t, 1, 16, 5, func(b *kasm.Builder, out isa.Reg) {
		b.Stg(out, 0, b.MovI(17))
		v := b.R()
		b.LdgTo(v, out, 0) // 17
		tex := b.Ldt(out, 0)
		b.Sts(b.MovI(0), 0, b.IAdd(v, tex)) // 34 in smem
		w := b.R()
		b.LdsTo(w, b.MovI(0), 0)
		b.Stg(out, 4, w) // 34

		f := b.R()
		b.MovFTo(f, 1.5)
		b.FAddTo(f, f, f)            // 3
		b.FMulTo(f, f, b.MovF(2))    // 6
		b.FFmaTo(f, f, b.MovF(2), f) // 18
		b.Stg(out, 8, f)

		s := b.R()
		b.ShrTo(s, b.MovI(64), 3) // 8
		b.Stg(out, 12, s)
		m := b.R()
		b.IMadTo(m, s, s, s) // 72
		b.Stg(out, 16, m)
	})
	if got[1] != 34 {
		t.Errorf("Ldg+Ldt+smem = %d", got[1])
	}
	if math.Float32frombits(got[2]) != 18 {
		t.Errorf("float-to chain = %v", math.Float32frombits(got[2]))
	}
	if got[3] != 8 || got[4] != 72 {
		t.Errorf("ShrTo/IMadTo = %d, %d", got[3], got[4])
	}
}
