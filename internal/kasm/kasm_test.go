package kasm

import (
	"strings"
	"testing"

	"gpurel/internal/isa"
)

func TestIfLowering(t *testing.T) {
	b := New("if")
	p := b.P()
	b.ISetpI(p, isa.CmpLT, b.S2R(isa.SRTidX), 4)
	b.If(p, false, func() {
		b.MovI(1)
	})
	b.FreeP(p)
	prog := b.MustBuild()

	var br *isa.Instr
	for i := range prog.Code {
		if prog.Code[i].Op == isa.OpBRA {
			br = &prog.Code[i]
			break
		}
	}
	if br == nil {
		t.Fatal("If emitted no branch")
	}
	if !br.PredNeg {
		t.Error("If branch must be taken when the condition is false")
	}
	if br.Target != br.Reconv {
		t.Errorf("If branch target %d must equal reconvergence %d", br.Target, br.Reconv)
	}
	if br.Target > len(prog.Code) {
		t.Errorf("branch target out of range")
	}
}

func TestIfElseLowering(t *testing.T) {
	b := New("ifelse")
	p := b.P()
	b.ISetpI(p, isa.CmpEQ, b.S2R(isa.SRTidX), 0)
	b.IfElse(p, false, func() { b.MovI(1) }, func() { b.MovI(2) })
	b.FreeP(p)
	prog := b.MustBuild()

	var brs []*isa.Instr
	for i := range prog.Code {
		if prog.Code[i].Op == isa.OpBRA {
			brs = append(brs, &prog.Code[i])
		}
	}
	if len(brs) != 2 {
		t.Fatalf("IfElse must emit 2 branches, got %d", len(brs))
	}
	condBr, jmp := brs[0], brs[1]
	if condBr.Reconv != jmp.Reconv {
		t.Errorf("both branches must share the reconvergence point: %d vs %d", condBr.Reconv, jmp.Reconv)
	}
	if condBr.Target <= jmp.Target-1 && condBr.Target != jmp.Target {
		// cond branch jumps to the else start, which follows the jmp
		if condBr.Target != jmp.Target {
			// else start is right after the unconditional jump
		}
	}
	if jmp.Pred != isa.PT || jmp.PredNeg {
		t.Error("then-exit jump must be unconditional")
	}
}

func TestWhileLowering(t *testing.T) {
	b := New("while")
	i := b.MovI(0)
	p := b.P()
	b.While(func() (isa.Pred, bool) {
		b.ISetpI(p, isa.CmpLT, i, 10)
		return p, false
	}, func() {
		b.IAddITo(i, i, 1)
	})
	b.FreeP(p)
	prog := b.MustBuild()

	var exitBr, backBr *isa.Instr
	for k := range prog.Code {
		ins := &prog.Code[k]
		if ins.Op != isa.OpBRA {
			continue
		}
		if ins.Target <= k {
			backBr = ins
		} else {
			exitBr = ins
		}
	}
	if exitBr == nil || backBr == nil {
		t.Fatal("While must emit a forward exit branch and a backward branch")
	}
	if exitBr.Target != exitBr.Reconv {
		t.Error("loop-exit branch must reconverge at the loop end")
	}
	if backBr.Pred != isa.PT {
		t.Error("back edge must be unconditional")
	}
}

func TestForCountsCorrectly(t *testing.T) {
	// structural check: For body plus increment and bound test exist
	b := New("for")
	i := b.MovI(0)
	n := 0
	b.ForI(i, 5, 1, func() { n++; b.MovI(9) })
	prog := b.MustBuild()
	if n != 1 {
		t.Errorf("loop body closure must run exactly once at build time, ran %d", n)
	}
	if len(prog.Code) < 5 {
		t.Errorf("For emitted too little code: %d instructions", len(prog.Code))
	}
}

func TestPredLIFO(t *testing.T) {
	b := New("pred")
	p1 := b.P()
	p2 := b.P()
	b.FreeP(p2)
	b.FreeP(p1)
	b.MovI(0)
	if _, err := b.Build(); err != nil {
		t.Errorf("LIFO pred usage must build: %v", err)
	}

	b2 := New("pred2")
	q1 := b2.P()
	_ = b2.P()
	b2.FreeP(q1) // out of order
	b2.MovI(0)
	if _, err := b2.Build(); err == nil {
		t.Error("out-of-order FreeP must fail the build")
	}
}

func TestPredExhaustion(t *testing.T) {
	b := New("exhaust")
	for i := 0; i < isa.NumPreds; i++ {
		b.P()
	}
	b.P() // 8th
	b.MovI(0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "predicate") {
		t.Errorf("predicate exhaustion must fail: %v", err)
	}
}

func TestRegisterExhaustion(t *testing.T) {
	b := New("regs")
	for i := 0; i < isa.MaxRegs+1; i++ {
		b.MovI(int32(i))
	}
	if _, err := b.Build(); err == nil {
		t.Error("register exhaustion must fail the build")
	}
}

func TestGuarded(t *testing.T) {
	b := New("guard")
	p := b.P()
	b.ISetpI(p, isa.CmpEQ, b.S2R(isa.SRTidX), 0)
	var idx int
	b.Guarded(p, true, func() {
		idx = len(b.code)
		b.MovI(5)
	})
	b.FreeP(p)
	prog := b.MustBuild()
	ins := prog.Code[idx]
	if ins.Pred != p || !ins.PredNeg {
		t.Errorf("guarded instruction has guard %v/%v, want %v/true", ins.Pred, ins.PredNeg, p)
	}
	// after the Guarded block, instructions are unguarded again
	last := prog.Code[len(prog.Code)-2] // the instruction before EXIT... EXIT itself is unguarded
	_ = last
}

func TestAutoExit(t *testing.T) {
	b := New("exit")
	b.MovI(0)
	prog := b.MustBuild()
	if prog.Code[len(prog.Code)-1].Op != isa.OpEXIT {
		t.Error("Build must append EXIT")
	}
	b2 := New("exit2")
	b2.MovI(0)
	b2.Exit()
	prog2 := b2.MustBuild()
	count := 0
	for _, ins := range prog2.Code {
		if ins.Op == isa.OpEXIT {
			count++
		}
	}
	if count != 1 {
		t.Errorf("explicit EXIT must not be duplicated, found %d", count)
	}
}

func TestNumRegsTracksAllocations(t *testing.T) {
	b := New("nr")
	b.MovI(1)
	b.MovI(2)
	r := b.IAdd(0, 1)
	_ = r
	prog := b.MustBuild()
	if prog.NumRegs != 3 {
		t.Errorf("NumRegs = %d, want 3", prog.NumRegs)
	}
}

func TestFDivAndExpfEmitMufu(t *testing.T) {
	b := New("mufu")
	x := b.MovF(2)
	b.FDiv(x, x)
	b.Expf(x)
	b.Logf(x)
	prog := b.MustBuild()
	var mufus []isa.MufuOp
	for _, ins := range prog.Code {
		if ins.Op == isa.OpMUFU {
			mufus = append(mufus, ins.Mufu)
		}
	}
	if len(mufus) != 3 || mufus[0] != isa.MufuRCP || mufus[1] != isa.MufuEX2 || mufus[2] != isa.MufuLG2 {
		t.Errorf("expected RCP, EX2, LG2; got %v", mufus)
	}
}
