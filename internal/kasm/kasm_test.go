package kasm

import (
	"strings"
	"testing"

	"gpurel/internal/flow"
	"gpurel/internal/isa"
)

func TestIfLowering(t *testing.T) {
	b := New("if")
	addr := b.MovI(0)
	v := b.MovI(0)
	p := b.P()
	b.ISetpI(p, isa.CmpLT, b.S2R(isa.SRTidX), 4)
	b.If(p, false, func() {
		b.MovITo(v, 1)
	})
	b.FreeP(p)
	b.Stg(addr, 0, v)
	prog := b.MustBuild()

	var br *isa.Instr
	for i := range prog.Code {
		if prog.Code[i].Op == isa.OpBRA {
			br = &prog.Code[i]
			break
		}
	}
	if br == nil {
		t.Fatal("If emitted no branch")
	}
	if !br.PredNeg {
		t.Error("If branch must be taken when the condition is false")
	}
	if br.Target != br.Reconv {
		t.Errorf("If branch target %d must equal reconvergence %d", br.Target, br.Reconv)
	}
	if br.Target > len(prog.Code) {
		t.Errorf("branch target out of range")
	}
}

func TestIfElseLowering(t *testing.T) {
	b := New("ifelse")
	addr := b.MovI(0)
	v := b.R()
	p := b.P()
	b.ISetpI(p, isa.CmpEQ, b.S2R(isa.SRTidX), 0)
	b.IfElse(p, false, func() { b.MovITo(v, 1) }, func() { b.MovITo(v, 2) })
	b.FreeP(p)
	b.Stg(addr, 0, v)
	prog := b.MustBuild()

	var brs []*isa.Instr
	for i := range prog.Code {
		if prog.Code[i].Op == isa.OpBRA {
			brs = append(brs, &prog.Code[i])
		}
	}
	if len(brs) != 2 {
		t.Fatalf("IfElse must emit 2 branches, got %d", len(brs))
	}
	condBr, jmp := brs[0], brs[1]
	if condBr.Reconv != jmp.Reconv {
		t.Errorf("both branches must share the reconvergence point: %d vs %d", condBr.Reconv, jmp.Reconv)
	}
	if condBr.Target <= jmp.Target-1 && condBr.Target != jmp.Target {
		// cond branch jumps to the else start, which follows the jmp
		if condBr.Target != jmp.Target {
			// else start is right after the unconditional jump
		}
	}
	if jmp.Pred != isa.PT || jmp.PredNeg {
		t.Error("then-exit jump must be unconditional")
	}
}

func TestWhileLowering(t *testing.T) {
	b := New("while")
	i := b.MovI(0)
	p := b.P()
	b.While(func() (isa.Pred, bool) {
		b.ISetpI(p, isa.CmpLT, i, 10)
		return p, false
	}, func() {
		b.IAddITo(i, i, 1)
	})
	b.FreeP(p)
	prog := b.MustBuild()

	var exitBr, backBr *isa.Instr
	for k := range prog.Code {
		ins := &prog.Code[k]
		if ins.Op != isa.OpBRA {
			continue
		}
		if ins.Target <= k {
			backBr = ins
		} else {
			exitBr = ins
		}
	}
	if exitBr == nil || backBr == nil {
		t.Fatal("While must emit a forward exit branch and a backward branch")
	}
	if exitBr.Target != exitBr.Reconv {
		t.Error("loop-exit branch must reconverge at the loop end")
	}
	if backBr.Pred != isa.PT {
		t.Error("back edge must be unconditional")
	}
}

func TestForCountsCorrectly(t *testing.T) {
	// structural check: For body plus increment and bound test exist
	b := New("for")
	addr := b.MovI(0)
	i := b.MovI(0)
	n := 0
	b.ForI(i, 5, 1, func() { n++; b.Stg(addr, 0, i) })
	prog := b.MustBuild()
	if n != 1 {
		t.Errorf("loop body closure must run exactly once at build time, ran %d", n)
	}
	if len(prog.Code) < 5 {
		t.Errorf("For emitted too little code: %d instructions", len(prog.Code))
	}
}

func TestPredLIFO(t *testing.T) {
	b := New("pred")
	p1 := b.P()
	p2 := b.P()
	b.FreeP(p2)
	b.FreeP(p1)
	a := b.MovI(0)
	b.Stg(a, 0, a)
	if _, err := b.Build(); err != nil {
		t.Errorf("LIFO pred usage must build: %v", err)
	}

	b2 := New("pred2")
	q1 := b2.P()
	_ = b2.P()
	b2.FreeP(q1) // out of order
	b2.MovI(0)
	if _, err := b2.Build(); err == nil {
		t.Error("out-of-order FreeP must fail the build")
	}
}

func TestPredExhaustion(t *testing.T) {
	b := New("exhaust")
	for i := 0; i < isa.NumPreds; i++ {
		b.P()
	}
	b.P() // 8th
	b.MovI(0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "predicate") {
		t.Errorf("predicate exhaustion must fail: %v", err)
	}
}

func TestRegisterExhaustion(t *testing.T) {
	b := New("regs")
	for i := 0; i < isa.MaxRegs+1; i++ {
		b.MovI(int32(i))
	}
	if _, err := b.Build(); err == nil {
		t.Error("register exhaustion must fail the build")
	}
}

func TestGuarded(t *testing.T) {
	b := New("guard")
	addr := b.MovI(0)
	v := b.MovI(0)
	p := b.P()
	b.ISetpI(p, isa.CmpEQ, b.S2R(isa.SRTidX), 0)
	var idx int
	b.Guarded(p, true, func() {
		idx = len(b.code)
		b.MovITo(v, 5)
	})
	b.FreeP(p)
	b.Stg(addr, 0, v)
	prog := b.MustBuild()
	ins := prog.Code[idx]
	if ins.Pred != p || !ins.PredNeg {
		t.Errorf("guarded instruction has guard %v/%v, want %v/true", ins.Pred, ins.PredNeg, p)
	}
	// after the Guarded block, instructions are unguarded again
	last := prog.Code[len(prog.Code)-2] // the instruction before EXIT... EXIT itself is unguarded
	_ = last
}

func TestAutoExit(t *testing.T) {
	b := New("exit")
	a := b.MovI(0)
	b.Stg(a, 0, a)
	prog := b.MustBuild()
	if prog.Code[len(prog.Code)-1].Op != isa.OpEXIT {
		t.Error("Build must append EXIT")
	}
	b2 := New("exit2")
	a2 := b2.MovI(0)
	b2.Stg(a2, 0, a2)
	b2.Exit()
	prog2 := b2.MustBuild()
	count := 0
	for _, ins := range prog2.Code {
		if ins.Op == isa.OpEXIT {
			count++
		}
	}
	if count != 1 {
		t.Errorf("explicit EXIT must not be duplicated, found %d", count)
	}
}

func TestNumRegsTracksAllocations(t *testing.T) {
	b := New("nr")
	x := b.MovI(1)
	y := b.MovI(2)
	r := b.IAdd(x, y)
	b.Stg(x, 0, r)
	prog := b.MustBuild()
	if prog.NumRegs != 3 {
		t.Errorf("NumRegs = %d, want 3", prog.NumRegs)
	}
}

func TestFDivAndExpfEmitMufu(t *testing.T) {
	b := New("mufu")
	x := b.MovF(2)
	d := b.FDiv(x, x)
	e := b.Expf(x)
	l := b.Logf(x)
	b.Stg(x, 0, d)
	b.Stg(x, 4, e)
	b.Stg(x, 8, l)
	prog := b.MustBuild()
	var mufus []isa.MufuOp
	for _, ins := range prog.Code {
		if ins.Op == isa.OpMUFU {
			mufus = append(mufus, ins.Mufu)
		}
	}
	if len(mufus) != 3 || mufus[0] != isa.MufuRCP || mufus[1] != isa.MufuEX2 || mufus[2] != isa.MufuLG2 {
		t.Errorf("expected RCP, EX2, LG2; got %v", mufus)
	}
}

// TestBuildRejectsDeadWrite: Build runs the flow linter, so a program whose
// emitted code contains an unread definition fails exactly where `gpudis
// -lint` would flag it — the two tools must agree.
func TestBuildRejectsDeadWrite(t *testing.T) {
	b := New("deadwrite")
	a := b.MovI(0)
	b.MovI(7) // never read
	b.Stg(a, 0, a)
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "dead-write") {
		t.Fatalf("dead write must fail the build with a dead-write diagnostic, got: %v", err)
	}
}

// TestBuildRejectsUndefinedRead: reading a register no path has written is a
// build failure, matching the linter's uninit-read rule.
func TestBuildRejectsUndefinedRead(t *testing.T) {
	b := New("undef")
	a := b.MovI(0)
	v := b.R() // allocated, never written
	b.Stg(a, 0, v)
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "uninit-read") {
		t.Fatalf("undefined read must fail the build with an uninit-read diagnostic, got: %v", err)
	}
}

// TestBuildRejectsPartiallyDefinedRead: a register written only on one arm of
// an If is maybe-undefined at a use after the join.
func TestBuildRejectsPartiallyDefinedRead(t *testing.T) {
	b := New("partial")
	a := b.MovI(0)
	v := b.R()
	p := b.P()
	b.ISetpI(p, isa.CmpEQ, b.S2R(isa.SRTidX), 0)
	b.If(p, false, func() { b.MovITo(v, 1) })
	b.FreeP(p)
	b.Stg(a, 0, v) // undefined when the If is not taken
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "uninit-read") {
		t.Fatalf("partially-defined read must fail the build, got: %v", err)
	}
}

// TestBuildAgreesWithLinter: any program Build accepts is lint-clean of
// errors, and Build's rejection message carries the same diagnostics the
// linter reports directly.
func TestBuildAgreesWithLinter(t *testing.T) {
	b := New("agree")
	a := b.MovI(0)
	b.MovI(3) // dead
	b.Stg(a, 0, a)
	b.Exit()
	p := &isa.Program{Name: "agree", Code: append([]isa.Instr(nil), b.code...), NumRegs: b.nextReg}
	diags := flow.Lint(p)
	if !flow.HasErrors(diags) {
		t.Fatal("fixture must carry a lint error")
	}
	_, err := b.Build()
	if err == nil {
		t.Fatal("Build accepted a program the linter flags")
	}
	for _, d := range diags {
		if d.Sev == flow.Error && !strings.Contains(err.Error(), d.String()) {
			t.Errorf("Build error does not carry linter diagnostic %q:\n%v", d, err)
		}
	}
}

// TestBuildAllowsDivergentBarrier: bar-divergence is warning-severity (it is
// only conditionally unsafe), so Build must not reject it — microfi's
// deliberately-divergent fixtures depend on this.
func TestBuildAllowsDivergentBarrier(t *testing.T) {
	b := New("divbar")
	a := b.MovI(0)
	p := b.P()
	b.ISetpI(p, isa.CmpLT, b.S2R(isa.SRTidX), 4)
	b.If(p, false, func() { b.Barrier() })
	b.FreeP(p)
	b.Stg(a, 0, a)
	if _, err := b.Build(); err != nil {
		t.Fatalf("warning-severity findings must not fail the build: %v", err)
	}
}
