// Package exec implements the shared SIMT execution semantics used by both
// the cycle-level microarchitecture simulator (internal/sim) and the fast
// functional executor (internal/funcsim). A Warp carries the divergence
// stack; Step executes one instruction for the warp against an Env that
// supplies register, predicate and memory state.
//
// Step is generic over the Env implementation so that both simulators get a
// devirtualised, allocation-free inner loop.
package exec

import (
	"fmt"
	"math"

	"gpurel/internal/isa"
)

// Env supplies per-lane architectural state and the memory system. Lane
// indices are warp-relative (0..WarpSize-1).
type Env interface {
	ReadReg(lane int, r isa.Reg) uint32
	WriteReg(lane int, r isa.Reg, v uint32)
	ReadPred(lane int, p isa.Pred) bool
	WritePred(lane int, p isa.Pred, v bool)
	Special(lane int, s isa.SReg) uint32
	Param(idx int) uint32
	LoadGlobal(lane int, addr uint32, tex bool) (uint32, error)
	StoreGlobal(lane int, addr uint32, v uint32) error
	LoadShared(lane int, addr uint32) (uint32, error)
	StoreShared(lane int, addr uint32, v uint32) error
}

// Ent is one SIMT reconvergence stack entry: the lanes it controls, their
// current PC, and the reconvergence PC at which the entry pops.
type Ent struct {
	Mask uint32
	PC   int32
	RPC  int32
}

// Warp is the dynamic control-flow state of one warp.
type Warp struct {
	FullMask uint32 // lanes that exist in this warp (partial warps at grid edge)
	Exited   uint32 // lanes that executed EXIT
	Stack    []Ent
}

// NewWarp initialises a warp of numLanes threads starting at PC 0.
func NewWarp(numLanes int) *Warp {
	full := uint32(0xFFFFFFFF)
	if numLanes < 32 {
		full = (uint32(1) << numLanes) - 1
	}
	return &Warp{
		FullMask: full,
		Stack:    []Ent{{Mask: full, PC: 0, RPC: -1}},
	}
}

// Reset restores the warp to its initial state.
func (w *Warp) Reset() {
	w.Exited = 0
	w.Stack = w.Stack[:0]
	w.Stack = append(w.Stack, Ent{Mask: w.FullMask, PC: 0, RPC: -1})
}

// Done reports whether all lanes have exited.
func (w *Warp) Done() bool { return w.Exited == w.FullMask }

// Normalize pops entries that have reached their reconvergence point or
// whose lanes have all exited. Exported for the pre-decoded µop executor in
// internal/sim, which mirrors Step's control flow on compiled programs.
func (w *Warp) Normalize() { w.normalize() }

// normalize pops entries that have reached their reconvergence point or
// whose lanes have all exited.
func (w *Warp) normalize() {
	for len(w.Stack) > 0 {
		top := &w.Stack[len(w.Stack)-1]
		if top.Mask&^w.Exited == 0 {
			w.Stack = w.Stack[:len(w.Stack)-1]
			continue
		}
		if top.RPC >= 0 && top.PC == top.RPC {
			w.Stack = w.Stack[:len(w.Stack)-1]
			continue
		}
		return
	}
}

// StepKind classifies the result of executing one instruction.
type StepKind uint8

// Step outcomes.
const (
	StepOK      StepKind = iota
	StepExit             // the whole warp has exited
	StepBarrier          // the warp arrived at a barrier; caller releases it
	StepFault            // a DUE-class fault (illegal access, bad PC, ...)
)

// StepInfo reports what one Step executed.
type StepInfo struct {
	Kind       StepKind
	Fault      error
	PC         int32
	Instr      *isa.Instr
	ActiveMask uint32 // lanes that actually executed the instruction
}

// ErrBadPC is returned (wrapped) when control flow escapes the program.
type ErrBadPC struct{ PC int32 }

func (e *ErrBadPC) Error() string { return fmt.Sprintf("invalid PC %d", e.PC) }

// ErrBarrierDivergence is returned when a warp reaches BAR with some lanes
// inactive — undefined behaviour on real hardware, a DUE here.
var ErrBarrierDivergence = fmt.Errorf("barrier reached by diverged warp")

// AdvancePastBarrier moves the warp past a BAR it is blocked on. The caller
// (the CTA barrier logic) invokes it once all warps have arrived.
func (w *Warp) AdvancePastBarrier() {
	w.Stack[len(w.Stack)-1].PC++
}

// PeekInstr normalises the stack and returns the instruction the next Step
// will execute, or nil if the warp is done or control flow is invalid.
func (w *Warp) PeekInstr(prog *isa.Program) *isa.Instr {
	w.normalize()
	if len(w.Stack) == 0 {
		return nil
	}
	pc := w.Stack[len(w.Stack)-1].PC
	if pc < 0 || int(pc) >= len(prog.Code) {
		return nil
	}
	return &prog.Code[pc]
}

// Step executes one instruction for the warp. The Env is a type parameter so
// the compiler can devirtualise the accessor calls for each simulator.
func Step[E Env](w *Warp, prog *isa.Program, env E) StepInfo {
	w.normalize()
	if len(w.Stack) == 0 {
		if w.Done() {
			return StepInfo{Kind: StepExit}
		}
		return StepInfo{Kind: StepFault, Fault: &ErrBadPC{PC: -1}}
	}
	top := &w.Stack[len(w.Stack)-1]
	pc := top.PC
	if pc < 0 || int(pc) >= len(prog.Code) {
		return StepInfo{Kind: StepFault, Fault: &ErrBadPC{PC: pc}}
	}
	ins := &prog.Code[pc]
	effective := top.Mask &^ w.Exited

	// Evaluate the guard predicate per lane.
	execMask := effective
	if ins.Pred != isa.PT || ins.PredNeg {
		execMask = 0
		for lane := 0; lane < 32; lane++ {
			bit := uint32(1) << lane
			if effective&bit == 0 {
				continue
			}
			v := readPred(env, lane, ins.Pred)
			if ins.PredNeg {
				v = !v
			}
			if v {
				execMask |= bit
			}
		}
	}

	info := StepInfo{Kind: StepOK, PC: pc, Instr: ins, ActiveMask: execMask}

	switch ins.Op {
	case isa.OpBRA:
		taken := execMask
		notTaken := effective &^ execMask
		switch {
		case taken == 0:
			top.PC = pc + 1
		case notTaken == 0:
			top.PC = int32(ins.Target)
		default:
			// Divergence: the current entry becomes the reconvergence
			// entry; children execute first.
			top.PC = int32(ins.Reconv)
			w.Stack = append(w.Stack,
				Ent{Mask: notTaken, PC: pc + 1, RPC: int32(ins.Reconv)},
				Ent{Mask: taken, PC: int32(ins.Target), RPC: int32(ins.Reconv)},
			)
		}
		return info

	case isa.OpEXIT:
		w.Exited |= execMask
		top.PC = pc + 1
		w.normalize()
		if w.Done() {
			info.Kind = StepExit
		}
		return info

	case isa.OpBAR:
		if execMask != w.FullMask&^w.Exited {
			info.Kind = StepFault
			info.Fault = ErrBarrierDivergence
			return info
		}
		info.Kind = StepBarrier
		return info

	case isa.OpNOP:
		top.PC = pc + 1
		return info
	}

	// Data instructions: execute per lane.
	for lane := 0; lane < 32; lane++ {
		bit := uint32(1) << lane
		if execMask&bit == 0 {
			continue
		}
		if err := execLane(env, lane, ins); err != nil {
			info.Kind = StepFault
			info.Fault = err
			return info
		}
	}
	top.PC = pc + 1
	return info
}

func readPred[E Env](env E, lane int, p isa.Pred) bool {
	if p == isa.PT {
		return true
	}
	return env.ReadPred(lane, p)
}

func writePred[E Env](env E, lane int, p isa.Pred, v bool) {
	if p == isa.PT {
		return
	}
	env.WritePred(lane, p, v)
}

func readReg[E Env](env E, lane int, r isa.Reg) uint32 {
	if r == isa.RZ {
		return 0
	}
	return env.ReadReg(lane, r)
}

func writeReg[E Env](env E, lane int, r isa.Reg, v uint32) {
	if r == isa.RZ {
		return
	}
	env.WriteReg(lane, r, v)
}

// F32I converts a float32 to int32 with saturation, matching hardware F2I
// semantics (Go's conversion is undefined for out-of-range values, and
// fault-injected runs hit those). Exported so the µop executor shares the
// exact conversion.
func F32I(f float32) int32 {
	switch {
	case f != f: // NaN
		return 0
	case f >= math.MaxInt32:
		return math.MaxInt32
	case f <= math.MinInt32:
		return math.MinInt32
	default:
		return int32(f)
	}
}

func execLane[E Env](env E, lane int, ins *isa.Instr) error {
	rb := func() uint32 {
		if ins.BImm {
			return uint32(ins.Imm)
		}
		return readReg(env, lane, ins.SrcB)
	}
	fa := func() float32 { return math.Float32frombits(readReg(env, lane, ins.SrcA)) }
	fb := func() float32 { return math.Float32frombits(rb()) }
	fw := func(f float32) { writeReg(env, lane, ins.Dst, math.Float32bits(f)) }

	switch ins.Op {
	case isa.OpS2R:
		writeReg(env, lane, ins.Dst, env.Special(lane, ins.Special))
	case isa.OpMOV:
		writeReg(env, lane, ins.Dst, readReg(env, lane, ins.SrcA))
	case isa.OpMOVI:
		writeReg(env, lane, ins.Dst, uint32(ins.Imm))
	case isa.OpLDC:
		writeReg(env, lane, ins.Dst, env.Param(int(ins.Imm)))

	case isa.OpIADD:
		writeReg(env, lane, ins.Dst, readReg(env, lane, ins.SrcA)+rb())
	case isa.OpISUB:
		writeReg(env, lane, ins.Dst, readReg(env, lane, ins.SrcA)-rb())
	case isa.OpIMUL:
		writeReg(env, lane, ins.Dst, uint32(int32(readReg(env, lane, ins.SrcA))*int32(rb())))
	case isa.OpIMAD:
		writeReg(env, lane, ins.Dst,
			uint32(int32(readReg(env, lane, ins.SrcA))*int32(rb())+int32(readReg(env, lane, ins.SrcC))))
	case isa.OpISCADD:
		writeReg(env, lane, ins.Dst,
			(readReg(env, lane, ins.SrcA)<<(ins.Imm2&31))+readReg(env, lane, ins.SrcB))
	case isa.OpIMIN:
		a, b := int32(readReg(env, lane, ins.SrcA)), int32(rb())
		writeReg(env, lane, ins.Dst, uint32(min(a, b)))
	case isa.OpIMAX:
		a, b := int32(readReg(env, lane, ins.SrcA)), int32(rb())
		writeReg(env, lane, ins.Dst, uint32(max(a, b)))
	case isa.OpSHL:
		writeReg(env, lane, ins.Dst, readReg(env, lane, ins.SrcA)<<(rb()&31))
	case isa.OpSHR:
		writeReg(env, lane, ins.Dst, readReg(env, lane, ins.SrcA)>>(rb()&31))
	case isa.OpAND:
		writeReg(env, lane, ins.Dst, readReg(env, lane, ins.SrcA)&rb())
	case isa.OpOR:
		writeReg(env, lane, ins.Dst, readReg(env, lane, ins.SrcA)|rb())
	case isa.OpXOR:
		writeReg(env, lane, ins.Dst, readReg(env, lane, ins.SrcA)^rb())

	case isa.OpFADD:
		fw(fa() + fb())
	case isa.OpFSUB:
		fw(fa() - fb())
	case isa.OpFMUL:
		fw(fa() * fb())
	case isa.OpFFMA:
		c := math.Float32frombits(readReg(env, lane, ins.SrcC))
		// fused multiply-add: single rounding, like hardware FFMA
		fw(float32(math.FMA(float64(fa()), float64(fb()), float64(c))))
	case isa.OpFMIN:
		a, b := fa(), fb()
		if a < b || b != b {
			fw(a)
		} else {
			fw(b)
		}
	case isa.OpFMAX:
		a, b := fa(), fb()
		if a > b || b != b {
			fw(a)
		} else {
			fw(b)
		}
	case isa.OpMUFU:
		x := float64(fa())
		var y float64
		switch ins.Mufu {
		case isa.MufuRCP:
			y = 1 / x
		case isa.MufuSQRT:
			y = math.Sqrt(x)
		case isa.MufuRSQ:
			y = 1 / math.Sqrt(x)
		case isa.MufuEX2:
			y = math.Exp2(x)
		case isa.MufuLG2:
			y = math.Log2(x)
		}
		fw(float32(y))

	case isa.OpI2F:
		fw(float32(int32(readReg(env, lane, ins.SrcA))))
	case isa.OpF2I:
		writeReg(env, lane, ins.Dst, uint32(F32I(fa())))

	case isa.OpISETP:
		a, b := int32(readReg(env, lane, ins.SrcA)), int32(rb())
		r := ICmp(ins.Cmp, a, b)
		c := readPred(env, lane, ins.CPred)
		if ins.CPredNeg {
			c = !c
		}
		writePred(env, lane, ins.PDst, r && c)
	case isa.OpFSETP:
		r := FCmp(ins.Cmp, fa(), fb())
		c := readPred(env, lane, ins.CPred)
		if ins.CPredNeg {
			c = !c
		}
		writePred(env, lane, ins.PDst, r && c)
	case isa.OpSEL:
		v := readPred(env, lane, ins.SelPred)
		if ins.SelPredNeg {
			v = !v
		}
		if v {
			writeReg(env, lane, ins.Dst, readReg(env, lane, ins.SrcA))
		} else {
			writeReg(env, lane, ins.Dst, rb())
		}

	case isa.OpLDG, isa.OpLDT:
		addr := readReg(env, lane, ins.SrcA) + uint32(ins.Imm)
		v, err := env.LoadGlobal(lane, addr, ins.Op == isa.OpLDT)
		if err != nil {
			return err
		}
		writeReg(env, lane, ins.Dst, v)
	case isa.OpSTG:
		addr := readReg(env, lane, ins.SrcA) + uint32(ins.Imm)
		if err := env.StoreGlobal(lane, addr, readReg(env, lane, ins.SrcB)); err != nil {
			return err
		}
	case isa.OpLDS:
		addr := readReg(env, lane, ins.SrcA) + uint32(ins.Imm)
		v, err := env.LoadShared(lane, addr)
		if err != nil {
			return err
		}
		writeReg(env, lane, ins.Dst, v)
	case isa.OpSTS:
		addr := readReg(env, lane, ins.SrcA) + uint32(ins.Imm)
		if err := env.StoreShared(lane, addr, readReg(env, lane, ins.SrcB)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unimplemented opcode %v", ins.Op)
	}
	return nil
}

// ICmp evaluates an integer comparison. Shared with the µop executor.
func ICmp(c isa.CmpOp, a, b int32) bool {
	switch c {
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	}
	return false
}

// FCmp evaluates a float comparison (CmpNE is true for NaN, per IEEE).
func FCmp(c isa.CmpOp, a, b float32) bool {
	switch c {
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b // true for NaN operands, matching IEEE
	}
	return false
}
