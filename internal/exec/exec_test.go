package exec

import (
	"math"
	"testing"
	"testing/quick"

	"gpurel/internal/isa"
)

// testEnv is a minimal Env for semantic tests: 32 lanes × registers, flat
// global and shared memory.
type testEnv struct {
	regs   [32][64]uint32
	preds  [32][8]bool
	global map[uint32]uint32
	shared map[uint32]uint32
	params []uint32
}

func newTestEnv() *testEnv {
	return &testEnv{global: map[uint32]uint32{}, shared: map[uint32]uint32{}}
}

func (e *testEnv) ReadReg(l int, r isa.Reg) uint32     { return e.regs[l][r] }
func (e *testEnv) WriteReg(l int, r isa.Reg, v uint32) { e.regs[l][r] = v }
func (e *testEnv) ReadPred(l int, p isa.Pred) bool     { return e.preds[l][p] }
func (e *testEnv) WritePred(l int, p isa.Pred, v bool) { e.preds[l][p] = v }
func (e *testEnv) Special(l int, s isa.SReg) uint32 {
	if s == isa.SRTidX {
		return uint32(l)
	}
	return 0
}
func (e *testEnv) Param(i int) uint32 {
	if i < len(e.params) {
		return e.params[i]
	}
	return 0
}
func (e *testEnv) LoadGlobal(l int, a uint32, tex bool) (uint32, error) { return e.global[a], nil }
func (e *testEnv) StoreGlobal(l int, a uint32, v uint32) error {
	e.global[a] = v
	return nil
}
func (e *testEnv) LoadShared(l int, a uint32) (uint32, error) { return e.shared[a], nil }
func (e *testEnv) StoreShared(l int, a uint32, v uint32) error {
	e.shared[a] = v
	return nil
}

// run executes a program to completion on a fresh warp.
func run(t *testing.T, code []isa.Instr, env *testEnv, lanes int) *Warp {
	t.Helper()
	prog := &isa.Program{Name: "t", Code: code, NumRegs: 64}
	w := NewWarp(lanes)
	for i := 0; i < 10000; i++ {
		info := Step(w, prog, env)
		switch info.Kind {
		case StepExit:
			return w
		case StepFault:
			t.Fatalf("unexpected fault: %v", info.Fault)
		case StepBarrier:
			w.AdvancePastBarrier()
		}
	}
	t.Fatalf("program did not terminate")
	return nil
}

func f32(bits uint32) float32 { return math.Float32frombits(bits) }
func bits(f float32) uint32   { return math.Float32bits(f) }

func TestALUSemantics(t *testing.T) {
	env := newTestEnv()
	for l := 0; l < 32; l++ {
		env.regs[l][1] = uint32(int32(l - 16)) // signed values around zero
		env.regs[l][2] = 3
	}
	code := []isa.Instr{
		{Op: isa.OpIADD, Dst: 10, SrcA: 1, SrcB: 2},
		{Op: isa.OpISUB, Dst: 11, SrcA: 1, SrcB: 2},
		{Op: isa.OpIMUL, Dst: 12, SrcA: 1, SrcB: 2},
		{Op: isa.OpIMAD, Dst: 13, SrcA: 1, SrcB: 2, SrcC: 10},
		{Op: isa.OpISCADD, Dst: 14, SrcA: 1, SrcB: 2, Imm2: 4},
		{Op: isa.OpIMIN, Dst: 15, SrcA: 1, SrcB: 2},
		{Op: isa.OpIMAX, Dst: 16, SrcA: 1, SrcB: 2},
		{Op: isa.OpAND, Dst: 17, SrcA: 1, BImm: true, Imm: 0xFF},
		{Op: isa.OpEXIT},
	}
	run(t, code, env, 32)
	for l := 0; l < 32; l++ {
		v := int32(l - 16)
		checks := []struct {
			reg  isa.Reg
			want int32
		}{
			{10, v + 3}, {11, v - 3}, {12, v * 3}, {13, v*3 + v + 3},
			{14, v<<4 + 3}, {15, min(v, 3)}, {16, max(v, 3)}, {17, v & 0xFF},
		}
		for _, c := range checks {
			if got := int32(env.regs[l][c.reg]); got != c.want {
				t.Errorf("lane %d R%d = %d, want %d", l, c.reg, got, c.want)
			}
		}
	}
}

func TestFloatSemantics(t *testing.T) {
	env := newTestEnv()
	env.regs[0][1] = bits(2.5)
	env.regs[0][2] = bits(4.0)
	env.regs[0][3] = bits(-1.5)
	code := []isa.Instr{
		{Op: isa.OpFADD, Dst: 10, SrcA: 1, SrcB: 2},
		{Op: isa.OpFMUL, Dst: 11, SrcA: 1, SrcB: 2},
		{Op: isa.OpFFMA, Dst: 12, SrcA: 1, SrcB: 2, SrcC: 3},
		{Op: isa.OpFMIN, Dst: 13, SrcA: 1, SrcB: 3},
		{Op: isa.OpFMAX, Dst: 14, SrcA: 1, SrcB: 3},
		{Op: isa.OpMUFU, Dst: 15, SrcA: 2, Mufu: isa.MufuSQRT},
		{Op: isa.OpMUFU, Dst: 16, SrcA: 2, Mufu: isa.MufuRCP},
		{Op: isa.OpI2F, Dst: 17, SrcA: 18},
		{Op: isa.OpEXIT},
	}
	neg7 := int32(-7)
	env.regs[0][18] = uint32(neg7)
	run(t, code, env, 1)
	cases := []struct {
		reg  isa.Reg
		want float32
	}{
		{10, 6.5}, {11, 10}, {12, 2.5*4 - 1.5}, {13, -1.5}, {14, 2.5},
		{15, 2}, {16, 0.25}, {17, -7},
	}
	for _, c := range cases {
		if got := f32(env.regs[0][c.reg]); got != c.want {
			t.Errorf("R%d = %v, want %v", c.reg, got, c.want)
		}
	}
}

func TestF2ISaturation(t *testing.T) {
	cases := []struct {
		in   float32
		want int32
	}{
		{1.9, 1}, {-1.9, -1}, {0, 0},
		{float32(math.Inf(1)), math.MaxInt32},
		{float32(math.Inf(-1)), math.MinInt32},
		{float32(math.NaN()), 0},
		{3e9, math.MaxInt32},
		{-3e9, math.MinInt32},
	}
	for _, c := range cases {
		if got := F32I(c.in); got != c.want {
			t.Errorf("F32I(%v) = %d, want %d", c.in, got, c.want)
		}
	}
	// property: F32I never panics and stays in int32 range for any input
	if err := quick.Check(func(b uint32) bool {
		_ = F32I(math.Float32frombits(b))
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPredicatesAndSel(t *testing.T) {
	env := newTestEnv()
	for l := 0; l < 32; l++ {
		env.regs[l][1] = uint32(l)
	}
	code := []isa.Instr{
		// P0 = tid < 10
		{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 1, BImm: true, Imm: 10, CPred: isa.PT},
		// R2 = P0 ? 111 : 222 via SEL of two immediates materialised first
		{Op: isa.OpMOVI, Dst: 3, Imm: 111},
		{Op: isa.OpMOVI, Dst: 4, Imm: 222},
		{Op: isa.OpSEL, Dst: 2, SrcA: 3, SrcB: 4, SelPred: isa.P0},
		// guarded move: @!P0 R5 = 7
		{Op: isa.OpMOVI, Dst: 5, Imm: 7, Pred: isa.P0, PredNeg: true},
		{Op: isa.OpEXIT},
	}
	run(t, code, env, 32)
	for l := 0; l < 32; l++ {
		want := uint32(222)
		if l < 10 {
			want = 111
		}
		if env.regs[l][2] != want {
			t.Errorf("lane %d SEL = %d, want %d", l, env.regs[l][2], want)
		}
		wantR5 := uint32(0)
		if l >= 10 {
			wantR5 = 7
		}
		if env.regs[l][5] != wantR5 {
			t.Errorf("lane %d guarded mov = %d, want %d", l, env.regs[l][5], wantR5)
		}
	}
}

func TestFCmpNaN(t *testing.T) {
	nan := float32(math.NaN())
	if FCmp(isa.CmpLT, nan, 1) || FCmp(isa.CmpEQ, nan, nan) || FCmp(isa.CmpGE, nan, 0) {
		t.Error("ordered comparisons with NaN must be false")
	}
	if !FCmp(isa.CmpNE, nan, nan) {
		t.Error("NE with NaN must be true")
	}
}

// TestDivergence: lanes < 16 take the then-branch, others the else-branch;
// both must execute and reconverge.
func TestDivergence(t *testing.T) {
	env := newTestEnv()
	for l := 0; l < 32; l++ {
		env.regs[l][1] = uint32(l)
	}
	code := []isa.Instr{
		/*0*/ {Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 1, BImm: true, Imm: 16, CPred: isa.PT},
		/*1*/ {Op: isa.OpBRA, Pred: isa.P0, PredNeg: true, Target: 4, Reconv: 5}, // @!P0 → else
		/*2*/ {Op: isa.OpMOVI, Dst: 2, Imm: 100},
		/*3*/ {Op: isa.OpBRA, Pred: isa.PT, Target: 5, Reconv: 5},
		/*4*/ {Op: isa.OpMOVI, Dst: 2, Imm: 200},
		/*5*/ {Op: isa.OpIADD, Dst: 3, SrcA: 2, BImm: true, Imm: 1}, // after reconvergence
		/*6*/ {Op: isa.OpEXIT},
	}
	run(t, code, env, 32)
	for l := 0; l < 32; l++ {
		want := uint32(201)
		if l < 16 {
			want = 101
		}
		if env.regs[l][3] != want {
			t.Errorf("lane %d R3 = %d, want %d", l, env.regs[l][3], want)
		}
	}
}

// TestDivergentLoop: each lane loops tid times; the total work must match
// Σ tid and the stack must fully unwind.
func TestDivergentLoop(t *testing.T) {
	env := newTestEnv()
	for l := 0; l < 32; l++ {
		env.regs[l][1] = uint32(l) // trip count
	}
	code := []isa.Instr{
		/*0*/ {Op: isa.OpMOVI, Dst: 2, Imm: 0}, // i
		/*1*/ {Op: isa.OpMOVI, Dst: 3, Imm: 0}, // acc
		/*2*/ {Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 2, SrcB: 1, CPred: isa.PT},
		/*3*/ {Op: isa.OpBRA, Pred: isa.P0, PredNeg: true, Target: 7, Reconv: 7},
		/*4*/ {Op: isa.OpIADD, Dst: 3, SrcA: 3, BImm: true, Imm: 5},
		/*5*/ {Op: isa.OpIADD, Dst: 2, SrcA: 2, BImm: true, Imm: 1},
		/*6*/ {Op: isa.OpBRA, Pred: isa.PT, Target: 2, Reconv: 7},
		/*7*/ {Op: isa.OpEXIT},
	}
	w := run(t, code, env, 32)
	for l := 0; l < 32; l++ {
		if got := env.regs[l][3]; got != uint32(5*l) {
			t.Errorf("lane %d acc = %d, want %d", l, got, 5*l)
		}
	}
	if len(w.Stack) != 0 && !(len(w.Stack) >= 0 && w.Done()) {
		t.Errorf("warp did not finish cleanly")
	}
}

// TestEXITUnderDivergence: some lanes exit early inside a branch; the rest
// must continue and complete.
func TestEXITUnderDivergence(t *testing.T) {
	env := newTestEnv()
	for l := 0; l < 32; l++ {
		env.regs[l][1] = uint32(l)
	}
	code := []isa.Instr{
		/*0*/ {Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpGE, SrcA: 1, BImm: true, Imm: 20, CPred: isa.PT},
		/*1*/ {Op: isa.OpBRA, Pred: isa.P0, PredNeg: true, Target: 3, Reconv: 3}, // skip exit
		/*2*/ {Op: isa.OpEXIT}, // lanes >= 20 exit here
		/*3*/ {Op: isa.OpMOVI, Dst: 2, Imm: 42},
		/*4*/ {Op: isa.OpEXIT},
	}
	run(t, code, env, 32)
	for l := 0; l < 32; l++ {
		want := uint32(42)
		if l >= 20 {
			want = 0
		}
		if env.regs[l][2] != want {
			t.Errorf("lane %d R2 = %d, want %d", l, env.regs[l][2], want)
		}
	}
}

// TestBarrierDivergenceFault: a BAR reached with a diverged mask is a DUE.
func TestBarrierDivergenceFault(t *testing.T) {
	env := newTestEnv()
	for l := 0; l < 32; l++ {
		env.regs[l][1] = uint32(l)
	}
	code := []isa.Instr{
		/*0*/ {Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 1, BImm: true, Imm: 16, CPred: isa.PT},
		/*1*/ {Op: isa.OpBRA, Pred: isa.P0, PredNeg: true, Target: 3, Reconv: 4},
		/*2*/ {Op: isa.OpBAR}, // only half the lanes arrive
		/*3*/ {Op: isa.OpMOVI, Dst: 2, Imm: 1},
		/*4*/ {Op: isa.OpEXIT},
	}
	prog := &isa.Program{Name: "t", Code: code, NumRegs: 64}
	w := NewWarp(32)
	for i := 0; i < 100; i++ {
		info := Step(w, prog, env)
		if info.Kind == StepFault {
			if info.Fault != ErrBarrierDivergence {
				t.Fatalf("wrong fault: %v", info.Fault)
			}
			return
		}
		if info.Kind == StepExit {
			t.Fatal("expected a barrier-divergence fault")
		}
		if info.Kind == StepBarrier {
			w.AdvancePastBarrier()
		}
	}
	t.Fatal("no fault observed")
}

// TestBadPCFault: branching past the end of the program is a DUE.
func TestBadPCFault(t *testing.T) {
	env := newTestEnv()
	code := []isa.Instr{
		{Op: isa.OpBRA, Pred: isa.PT, Target: 99, Reconv: 99},
		{Op: isa.OpEXIT},
	}
	prog := &isa.Program{Name: "t", Code: code, NumRegs: 4}
	w := NewWarp(4)
	info := Step(w, prog, env)
	if info.Kind != StepOK {
		t.Fatalf("branch step failed: %+v", info)
	}
	info = Step(w, prog, env)
	if info.Kind != StepFault {
		t.Fatalf("expected bad-PC fault, got %+v", info)
	}
}

// TestPartialWarp: a warp with fewer than 32 lanes runs only those lanes.
func TestPartialWarp(t *testing.T) {
	env := newTestEnv()
	code := []isa.Instr{
		{Op: isa.OpMOVI, Dst: 2, Imm: 9},
		{Op: isa.OpEXIT},
	}
	run(t, code, env, 5)
	for l := 0; l < 32; l++ {
		want := uint32(0)
		if l < 5 {
			want = 9
		}
		if env.regs[l][2] != want {
			t.Errorf("lane %d = %d, want %d", l, env.regs[l][2], want)
		}
	}
}

// TestRZSemantics: RZ reads as zero and discards writes.
func TestRZSemantics(t *testing.T) {
	env := newTestEnv()
	env.regs[0][1] = 5
	code := []isa.Instr{
		{Op: isa.OpIADD, Dst: isa.RZ, SrcA: 1, SrcB: 1}, // discarded
		{Op: isa.OpIADD, Dst: 2, SrcA: isa.RZ, SrcB: 1}, // 0 + 5
		{Op: isa.OpEXIT},
	}
	run(t, code, env, 1)
	if env.regs[0][2] != 5 {
		t.Errorf("RZ source: got %d, want 5", env.regs[0][2])
	}
}

// TestShiftMasking: shift amounts are masked to 5 bits like hardware.
func TestShiftMasking(t *testing.T) {
	env := newTestEnv()
	env.regs[0][1] = 1
	code := []isa.Instr{
		{Op: isa.OpSHL, Dst: 2, SrcA: 1, BImm: true, Imm: 33}, // 33&31 = 1
		{Op: isa.OpEXIT},
	}
	run(t, code, env, 1)
	if env.regs[0][2] != 2 {
		t.Errorf("SHL by 33 = %d, want 2 (masked shift)", env.regs[0][2])
	}
}

// TestMemoryOps: loads and stores address R[a]+imm per lane.
func TestMemoryOps(t *testing.T) {
	env := newTestEnv()
	for l := 0; l < 32; l++ {
		env.regs[l][1] = uint32(0x1000 + 4*l)
		env.global[uint32(0x1000+4*l)] = uint32(l * 10)
	}
	code := []isa.Instr{
		{Op: isa.OpLDG, Dst: 2, SrcA: 1},
		{Op: isa.OpIADD, Dst: 2, SrcA: 2, BImm: true, Imm: 1},
		{Op: isa.OpSTG, SrcA: 1, SrcB: 2, Imm: 0x100},
		{Op: isa.OpSTS, SrcA: 1, SrcB: 2},
		{Op: isa.OpLDS, Dst: 3, SrcA: 1},
		{Op: isa.OpEXIT},
	}
	run(t, code, env, 32)
	for l := 0; l < 32; l++ {
		want := uint32(l*10 + 1)
		if got := env.global[uint32(0x1100+4*l)]; got != want {
			t.Errorf("lane %d global store = %d, want %d", l, got, want)
		}
		if got := env.regs[l][3]; got != want {
			t.Errorf("lane %d shared roundtrip = %d, want %d", l, got, want)
		}
	}
}

// TestStackProperty: for random divergence patterns (via per-lane trip
// counts), the loop result must always equal the sequential computation.
func TestStackProperty(t *testing.T) {
	f := func(trips [32]uint8) bool {
		env := newTestEnv()
		for l := 0; l < 32; l++ {
			env.regs[l][1] = uint32(trips[l] % 17)
		}
		code := []isa.Instr{
			{Op: isa.OpMOVI, Dst: 2, Imm: 0},
			{Op: isa.OpMOVI, Dst: 3, Imm: 0},
			{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 2, SrcB: 1, CPred: isa.PT},
			{Op: isa.OpBRA, Pred: isa.P0, PredNeg: true, Target: 7, Reconv: 7},
			{Op: isa.OpIADD, Dst: 3, SrcA: 3, SrcB: 2},
			{Op: isa.OpIADD, Dst: 2, SrcA: 2, BImm: true, Imm: 1},
			{Op: isa.OpBRA, Pred: isa.PT, Target: 2, Reconv: 7},
			{Op: isa.OpEXIT},
		}
		prog := &isa.Program{Name: "q", Code: code, NumRegs: 8}
		w := NewWarp(32)
		for i := 0; i < 100000; i++ {
			info := Step(w, prog, env)
			if info.Kind == StepExit {
				break
			}
			if info.Kind == StepFault {
				return false
			}
		}
		if !w.Done() {
			return false
		}
		for l := 0; l < 32; l++ {
			n := uint32(trips[l] % 17)
			if env.regs[l][3] != n*(n-1)/2*1 && !(n == 0 && env.regs[l][3] == 0) {
				// Σ_{i<n} i = n(n-1)/2
				if env.regs[l][3] != n*(n-1)/2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
