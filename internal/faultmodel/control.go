// Control-state faults: upsets in machine state held in flip-flops rather
// than SRAM arrays — warp-scheduler entries, SIMT divergence-stack entries,
// and CTA barrier latches. Which of the three classes an experiment hits is
// the target *structure* (gpu.Sched/Stack/Barrier), chosen exactly like a
// storage structure; the model only decides persistence (one-shot flip vs
// permanently forced latch). Flip-flops carry no ECC word, so these faults
// bypass the SEC-DED preflight screen entirely.
package faultmodel

import (
	"math/rand"

	"gpurel/internal/gpu"
	"gpurel/internal/sim"
)

// ControlFault upsets one control-state bit. Stuck == nil is a transient
// flip of the latch; Stuck == 0/1 forces the latch to that value every
// cycle for the rest of the run (a permanent defect in the flip-flop).
type ControlFault struct{ Stuck *int }

// Name implements Model.
func (c ControlFault) Name() string {
	if c.Stuck != nil {
		return "control-stuck"
	}
	return ModelControl
}

// Persistent implements Model.
func (c ControlFault) Persistent() bool { return c.Stuck != nil }

// WordBits implements Model: 0 — flip-flop state is outside ECC protection.
func (c ControlFault) WordBits() int { return 0 }

// Arm implements Model. Sites are addressed physically — (SM, warp slot,
// field) — so a persistent defect stays with the hardware slot across CTA
// retirement: appliers re-resolve the slot each cycle and no-op while it is
// unoccupied (or, for stack faults, while the addressed entry has popped).
//
// Draw order per class (all uniform):
//   - Sched:   global slot k over Σ NumWarpSlots, then bit over the
//     17-bit scheduler entry (ready timestamp low bits + done latch).
//   - Stack:   global entry k over Σ stack depths, then word (mask/PC/RPC),
//     then bit over 32.
//   - Barrier: global slot k (the arrival latch is a single bit).
func (c ControlFault) Arm(m *sim.Machine, s gpu.Structure, rng *rand.Rand) (Applier, bool) {
	switch s {
	case gpu.Sched:
		smIdx, slot, ok := pickSlot(m, rng)
		if !ok {
			return nil, false
		}
		bit := uint(rng.Intn(sim.SchedEntryBits))
		if c.Stuck == nil {
			wc, _ := m.SMs[smIdx].WarpSlot(slot)
			wc.FlipSchedBit(bit)
			return nil, true
		}
		v := *c.Stuck == 1
		ap := func(m *sim.Machine) {
			if wc, ok := m.SMs[smIdx].WarpSlot(slot); ok {
				wc.ForceSchedBit(bit, v)
			}
		}
		ap(m)
		return ap, true

	case gpu.Stack:
		smIdx, slot, entry, ok := pickStackEntry(m, rng)
		if !ok {
			return nil, false
		}
		word := rng.Intn(sim.StackEntryWords)
		bit := uint(rng.Intn(32))
		if c.Stuck == nil {
			wc, _ := m.SMs[smIdx].WarpSlot(slot)
			wc.FlipStackBit(entry, word, bit)
			return nil, true
		}
		v := *c.Stuck == 1
		ap := func(m *sim.Machine) {
			if wc, ok := m.SMs[smIdx].WarpSlot(slot); ok {
				wc.ForceStackBit(entry, word, bit, v)
			}
		}
		ap(m)
		return ap, true

	case gpu.Barrier:
		smIdx, slot, ok := pickSlot(m, rng)
		if !ok {
			return nil, false
		}
		if c.Stuck == nil {
			wc, _ := m.SMs[smIdx].WarpSlot(slot)
			wc.FlipBarrier()
			return nil, true
		}
		v := *c.Stuck == 1
		ap := func(m *sim.Machine) {
			if wc, ok := m.SMs[smIdx].WarpSlot(slot); ok {
				wc.ForceBarrier(v)
			}
		}
		ap(m)
		return ap, true
	}
	return nil, false
}

// pickSlot draws a uniform resident warp slot across all SMs (SMs in index
// order, slots in scheduler scan order) and returns its (SM index, local
// slot index). ok is false when no warps are resident.
func pickSlot(m *sim.Machine, rng *rand.Rand) (int, int, bool) {
	total := 0
	for _, sm := range m.SMs {
		total += sm.NumWarpSlots()
	}
	if total == 0 {
		return 0, 0, false
	}
	k := rng.Intn(total)
	for i, sm := range m.SMs {
		n := sm.NumWarpSlots()
		if k < n {
			return i, k, true
		}
		k -= n
	}
	panic("faultmodel: slot selection overran the resident warps")
}

// pickStackEntry draws a uniform divergence-stack entry across every
// resident warp's stack and returns (SM index, slot, entry index). ok is
// false when every resident stack is empty.
func pickStackEntry(m *sim.Machine, rng *rand.Rand) (int, int, int, bool) {
	total := 0
	for _, sm := range m.SMs {
		for i, n := 0, sm.NumWarpSlots(); i < n; i++ {
			wc, _ := sm.WarpSlot(i)
			total += wc.StackDepth()
		}
	}
	if total == 0 {
		return 0, 0, 0, false
	}
	k := rng.Intn(total)
	for si, sm := range m.SMs {
		for i, n := 0, sm.NumWarpSlots(); i < n; i++ {
			wc, _ := sm.WarpSlot(i)
			d := wc.StackDepth()
			if k < d {
				return si, i, k, true
			}
			k -= d
		}
	}
	panic("faultmodel: stack-entry selection overran the resident stacks")
}
