// Package faultmodel defines the pluggable fault models of the injection
// layer: what kind of defect an experiment plants, where it can land, and
// how long it persists. The historical injector hard-coded one model — a
// transient single-bit flip in a storage array (a particle strike) — which
// this package refactors into one implementation of a small interface,
// alongside three families the literature shows behave qualitatively
// differently:
//
//   - StuckAt: a permanent stuck-at-0/1 cell. The defective bit is forced
//     every cycle from the injection cycle to the end of the run, so writes
//     cannot heal it.
//   - SpatialMBU: a spatially-correlated multi-bit upset — adjacent bits
//     within a word and adjacent rows (registers, bytes, cache lines)
//     within the structure, corrupted once.
//   - Control: a flip or stuck-at in control state outside the storage
//     arrays — warp-scheduler entries, SIMT divergence-stack entries, or
//     CTA barrier latches (gpu.Sched/Stack/Barrier sites).
//
// The campaign algebra above this package (sampling, adaptive stopping,
// pruning, checkpointing, fleet distribution) is model-agnostic; the one
// interaction that is not — convergence joins are unsound while a fault
// stays armed — is keyed off Model.Persistent by the injector.
//
// Determinism contract: Arm must consume the rand stream identically for a
// given (model, structure) regardless of machine state details, and
// appliers must be pure functions of the machine so that checkpointed and
// brute-force runs of the same (seed, run) pair stay bit-identical.
package faultmodel

import (
	"fmt"
	"math/rand"

	"gpurel/internal/gpu"
	"gpurel/internal/sim"
)

// Applier re-asserts a persistent fault. The injector invokes it at the top
// of every cycle from the injection cycle to the end of the run; it must be
// idempotent within a cycle and must bounds-check its site (resident CTAs
// come and go under a physical-slot fault).
type Applier func(*sim.Machine)

// Model is one fault-model family, instantiated with its parameters.
type Model interface {
	// Name is the model's canonical label, used in tables and reports.
	Name() string
	// Persistent reports whether the fault stays armed after injection —
	// if so the injector re-applies it every cycle and must not attempt
	// convergence joins against fault-free reference state.
	Persistent() bool
	// WordBits is the fault's adjacent-bit footprint within one ECC word,
	// used by the SEC-DED preflight screen (1 corrected, 2 detected, wider
	// escapes). 0 means the fault bypasses ECC entirely (control state in
	// flip-flops carries no code word).
	WordBits() int
	// Arm selects a fault site on the live machine and corrupts it for the
	// first time. It returns a non-nil Applier when the fault persists
	// (the injector then re-applies it every cycle), and whether any site
	// was hit (false when the structure has nothing allocated/resident at
	// the injection cycle).
	Arm(m *sim.Machine, s gpu.Structure, rng *rand.Rand) (Applier, bool)
}

// Model names accepted on the wire and the CLIs. An empty model string
// means ModelTransient (the legacy default).
const (
	ModelTransient = "transient"
	ModelStuck     = "stuck"
	ModelMBU       = "mbu"
	ModelControl   = "control"
)

// Spec is the serializable description of a fault model — the nested
// fault{...} group of the v1 wire schema and the CLI flags. The zero Spec
// is the legacy transient single-bit flip.
type Spec struct {
	// Model selects the family: "", "transient", "stuck", "mbu", "control".
	Model string `json:"model,omitempty"`
	// Stuck is the forced value (0 or 1). Required for "stuck"; optional
	// for "control", where its presence turns the one-shot control flip
	// into a permanent forced latch. A pointer so absence is distinct
	// from stuck-at-0.
	Stuck *int `json:"stuck,omitempty"`
	// Width is the adjacent-bit footprint within a word: the burst width
	// for "transient" (0/1 = single bit) and the per-word bit count for
	// "mbu".
	Width int `json:"width,omitempty"`
	// Lines is the number of adjacent rows (registers, bytes, cache
	// lines) an "mbu" corrupts (0/1 = one row).
	Lines int `json:"lines,omitempty"`
}

// Spec parameter bounds: a word is at most 32 bits, and a physically
// plausible MBU cluster spans a handful of rows.
const (
	MaxWidth = 32
	MaxLines = 8
)

// norm returns the spec with defaults made explicit (empty model name
// resolved, zero width/lines raised to 1 where the family uses them).
func (s Spec) norm() Spec {
	if s.Model == "" {
		s.Model = ModelTransient
	}
	if s.Width < 1 {
		s.Width = 1
	}
	if s.Lines < 1 {
		s.Lines = 1
	}
	return s
}

// Validate checks the spec's internal consistency (structure pairing is
// checked separately by ValidateFor, where the target is known).
func (s Spec) Validate() error {
	n := s.norm()
	switch n.Model {
	case ModelTransient:
		if s.Stuck != nil {
			return fmt.Errorf("fault model %q does not take stuck", n.Model)
		}
		if s.Lines > 1 {
			return fmt.Errorf("fault model %q does not take lines (use model mbu)", n.Model)
		}
	case ModelStuck:
		if s.Stuck == nil {
			return fmt.Errorf("fault model stuck requires stuck: 0 or 1")
		}
		if s.Width > 1 || s.Lines > 1 {
			return fmt.Errorf("fault model stuck is a single cell; width/lines not allowed")
		}
	case ModelMBU:
		if s.Stuck != nil {
			return fmt.Errorf("fault model %q does not take stuck", n.Model)
		}
	case ModelControl:
		if s.Width > 1 || s.Lines > 1 {
			return fmt.Errorf("fault model control targets single latches; width/lines not allowed")
		}
	default:
		return fmt.Errorf("unknown fault model %q", s.Model)
	}
	if s.Stuck != nil && *s.Stuck != 0 && *s.Stuck != 1 {
		return fmt.Errorf("stuck must be 0 or 1, got %d", *s.Stuck)
	}
	if s.Width < 0 || n.Width > MaxWidth {
		return fmt.Errorf("width must be in [0,%d], got %d", MaxWidth, s.Width)
	}
	if s.Lines < 0 || n.Lines > MaxLines {
		return fmt.Errorf("lines must be in [0,%d], got %d", MaxLines, s.Lines)
	}
	return nil
}

// ValidateFor additionally checks the spec against its target structure:
// control sites take only the control model, storage arrays everything else.
func (s Spec) ValidateFor(st gpu.Structure) error {
	if err := s.Validate(); err != nil {
		return err
	}
	isCtl := s.norm().Model == ModelControl
	if st.IsControl() != isCtl {
		if isCtl {
			return fmt.Errorf("fault model control requires a control structure (SCHED/STACK/BARRIER), got %v", st)
		}
		return fmt.Errorf("structure %v requires fault model control", st)
	}
	return nil
}

// Build validates the spec and instantiates its model.
func (s Spec) Build() (Model, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.norm()
	switch n.Model {
	case ModelTransient:
		return Transient{Width: n.Width}, nil
	case ModelStuck:
		return StuckAt{V: *s.Stuck}, nil
	case ModelMBU:
		return SpatialMBU{Width: n.Width, Lines: n.Lines}, nil
	case ModelControl:
		return ControlFault{Stuck: s.Stuck}, nil
	}
	panic("faultmodel: Validate admitted unknown model " + s.Model)
}

// IsDefault reports whether the spec describes the legacy default —
// a transient single-bit flip. Default specs contribute nothing to
// experiment seeds, keeping every pre-existing campaign bit-identical.
func (s Spec) IsDefault() bool { return s.Canonical() == "" }

// Canonical renders the spec as a stable identity string: "" for the
// default, else a compact normalized form ("stuck0", "mbu:w2:l2",
// "transient:w3", "control", "control:stuck1"). Experiment seeds and memo
// keys hash it, so two spellings of the same fault collide and any
// parameter change reseeds.
func (s Spec) Canonical() string {
	n := s.norm()
	switch n.Model {
	case ModelTransient:
		if n.Width <= 1 {
			return ""
		}
		return fmt.Sprintf("transient:w%d", n.Width)
	case ModelStuck:
		v := 0
		if s.Stuck != nil {
			v = *s.Stuck
		}
		return fmt.Sprintf("stuck%d", v)
	case ModelMBU:
		return fmt.Sprintf("mbu:w%d:l%d", n.Width, n.Lines)
	case ModelControl:
		if s.Stuck != nil {
			return fmt.Sprintf("control:stuck%d", *s.Stuck)
		}
		return "control"
	}
	return s.Model // invalid; Validate will reject before use
}

// Label is the human-facing name for tables: "transient" for the default
// instead of the canonical empty string.
func (s Spec) Label() string {
	if c := s.Canonical(); c != "" {
		return c
	}
	return ModelTransient
}

// Ptr returns a pointer to v; convenience for building Spec.Stuck literals.
func Ptr(v int) *int { return &v }
