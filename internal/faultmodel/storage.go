// Storage-array fault models: the transient flip (the legacy injector,
// refactored behind the Model interface), the permanent stuck-at cell, and
// the spatially-correlated multi-bit upset. All three share one site
// distribution per structure — uniform over currently-allocated entries for
// RF and shared memory (the gpuFI-4 constraint, corrected by the derating
// factor), uniform over the whole data array for caches — and draw from the
// rand stream in the same order (row index, then bit index), so campaigns
// differ only in the fault's footprint and persistence, never in where
// faults land.
package faultmodel

import (
	"fmt"
	"math/rand"

	"gpurel/internal/gpu"
	"gpurel/internal/mem"
	"gpurel/internal/sim"
)

// Transient is the paper's particle-strike model: Width adjacent bits of
// one word flipped once at the injection cycle (Width ≤ 1 is the classic
// single-bit upset). It reproduces the historical injector draw-for-draw.
type Transient struct{ Width int }

// Name implements Model.
func (t Transient) Name() string { return ModelTransient }

// Persistent implements Model: a strike corrupts state once.
func (t Transient) Persistent() bool { return false }

// WordBits implements Model.
func (t Transient) WordBits() int {
	if t.Width < 1 {
		return 1
	}
	return t.Width
}

// Arm implements Model.
func (t Transient) Arm(m *sim.Machine, s gpu.Structure, rng *rand.Rand) (Applier, bool) {
	site, ok := pickStorageSite(m, s, rng)
	if !ok {
		return nil, false
	}
	site.flip(t.WordBits(), 1)
	return nil, true
}

// StuckAt is a permanent defect: one cell forced to V (0 or 1) every cycle
// from the injection cycle to the end of the run. Re-assertion happens at
// cycle granularity — a write lands, then the top of the next cycle forces
// the cell back, matching a defective cell read strictly after the fault
// re-manifests.
type StuckAt struct{ V int }

// Name implements Model.
func (s StuckAt) Name() string { return fmt.Sprintf("stuck%d", s.V) }

// Persistent implements Model.
func (s StuckAt) Persistent() bool { return true }

// WordBits implements Model: one defective cell per word, corrected by
// SEC-DED on every read.
func (s StuckAt) WordBits() int { return 1 }

// Arm implements Model. The site is a physical cell: if the owning CTA
// retires and another allocation takes the cell, the defect applies to the
// new occupant.
func (s StuckAt) Arm(m *sim.Machine, st gpu.Structure, rng *rand.Rand) (Applier, bool) {
	site, ok := pickStorageSite(m, st, rng)
	if !ok {
		return nil, false
	}
	v := s.V == 1
	ap := func(*sim.Machine) { site.force(v) }
	ap(m)
	return ap, true
}

// SpatialMBU is a spatially-correlated multi-bit upset: Width adjacent bits
// flipped in each of Lines adjacent rows (physical registers, shared-memory
// bytes, or cache lines), once. Rows past the end of the array are clamped
// — the cluster is a physical neighbourhood, so it may spill into cells the
// running kernel never allocated; those flips are real but unobservable.
// SpatialMBU{Width: w, Lines: 1} is bit-identical to Transient{Width: w}.
type SpatialMBU struct{ Width, Lines int }

// Name implements Model.
func (s SpatialMBU) Name() string { return ModelMBU }

// Persistent implements Model.
func (s SpatialMBU) Persistent() bool { return false }

// WordBits implements Model: each affected ECC word sees Width adjacent
// bits, so the SEC-DED screen keys on Width alone regardless of Lines.
func (s SpatialMBU) WordBits() int {
	if s.Width < 1 {
		return 1
	}
	return s.Width
}

// Arm implements Model.
func (s SpatialMBU) Arm(m *sim.Machine, st gpu.Structure, rng *rand.Rand) (Applier, bool) {
	site, ok := pickStorageSite(m, st, rng)
	if !ok {
		return nil, false
	}
	lines := s.Lines
	if lines < 1 {
		lines = 1
	}
	site.flip(s.WordBits(), lines)
	return nil, true
}

// storageSite is one drawn cell of a storage array, with enough context to
// corrupt it and its spatial neighbours.
type storageSite struct {
	structure gpu.Structure
	sm        *sim.SM    // RF/SMEM
	idx       int        // register / byte index within the SM array
	cache     *mem.Cache // L1D/L1T/L2
	line      int
	off       uint32
	bit       uint
}

// pickStorageSite draws a uniform site within structure s, consuming the
// rand stream exactly as the historical injector did: RF/SMEM draw
// (entry, bit) over the allocated blocks; caches draw (sm,) line, offset,
// bit over the whole array. ok is false when nothing is allocated at this
// cycle (RF/SMEM only).
func pickStorageSite(m *sim.Machine, s gpu.Structure, rng *rand.Rand) (storageSite, bool) {
	switch s {
	case gpu.RF:
		sm, idx, ok := pickAllocated(m, rng, (*sim.SM).AllocatedRF, 32)
		if !ok {
			return storageSite{}, false
		}
		return storageSite{structure: s, sm: m.SMs[sm], idx: idx.k, bit: idx.bit}, true
	case gpu.SMEM:
		sm, idx, ok := pickAllocated(m, rng, (*sim.SM).AllocatedSmem, 8)
		if !ok {
			return storageSite{}, false
		}
		return storageSite{structure: s, sm: m.SMs[sm], idx: idx.k, bit: idx.bit}, true
	case gpu.L1D, gpu.L1T:
		sm := m.SMs[rng.Intn(len(m.SMs))]
		c := sm.L1D
		if s == gpu.L1T {
			c = sm.L1T
		}
		return pickCacheSite(s, c, rng), true
	case gpu.L2:
		return pickCacheSite(s, m.L2, rng), true
	}
	return storageSite{}, false
}

// drawnEntry is the (entry index within its SM, bit) pair drawn for an
// allocated-array site.
type drawnEntry struct {
	k   int
	bit uint
}

// pickAllocated draws uniformly over the allocated blocks of every SM
// (SMs in index order, blocks in CTA placement order — the enumeration the
// pruned injectors replay against their liveness timelines) and returns
// the owning SM index with the resolved entry.
func pickAllocated(m *sim.Machine, rng *rand.Rand, blocksOf func(*sim.SM) []sim.RFBlock, bits int) (int, drawnEntry, bool) {
	type smBlock struct {
		sm  int
		blk sim.RFBlock
	}
	var blocks []smBlock
	total := 0
	for i, sm := range m.SMs {
		for _, b := range blocksOf(sm) {
			blocks = append(blocks, smBlock{i, b})
			total += b.Size
		}
	}
	if total == 0 {
		return 0, drawnEntry{}, false
	}
	k := rng.Intn(total)
	bit := uint(rng.Intn(bits))
	for _, sb := range blocks {
		if k < sb.blk.Size {
			return sb.sm, drawnEntry{k: sb.blk.Base + k, bit: bit}, true
		}
		k -= sb.blk.Size
	}
	panic("faultmodel: site selection overran the allocated blocks")
}

func pickCacheSite(s gpu.Structure, c *mem.Cache, rng *rand.Rand) storageSite {
	return storageSite{
		structure: s,
		cache:     c,
		line:      rng.Intn(c.NumLines()),
		off:       uint32(rng.Intn(int(c.LineSize()))),
		bit:       uint(rng.Intn(8)),
	}
}

// flip XORs width adjacent bits in each of lines adjacent rows starting at
// the site, clamping rows at the array boundary. With lines=1 it matches
// the historical burst flip bit-for-bit.
func (st storageSite) flip(width, lines int) {
	switch st.structure {
	case gpu.RF:
		for l := 0; l < lines && st.idx+l < len(st.sm.RF); l++ {
			for w := 0; w < width; w++ {
				st.sm.RF[st.idx+l] ^= 1 << ((st.bit + uint(w)) % 32)
			}
			st.sm.MarkRF(st.idx + l)
		}
	case gpu.SMEM:
		for l := 0; l < lines && st.idx+l < len(st.sm.Smem); l++ {
			for w := 0; w < width; w++ {
				st.sm.Smem[st.idx+l] ^= 1 << ((st.bit + uint(w)) % 8)
			}
			st.sm.MarkSmem(st.idx + l)
		}
	default:
		for l := 0; l < lines && st.line+l < st.cache.NumLines(); l++ {
			for w := 0; w < width; w++ {
				st.cache.FlipBit(st.line+l, st.off, uint8(st.bit)+uint8(w))
			}
		}
	}
}

// force sets the site's single cell bit to v (idempotent).
func (st storageSite) force(v bool) {
	switch st.structure {
	case gpu.RF:
		mask := uint32(1) << (st.bit % 32)
		if v {
			st.sm.RF[st.idx] |= mask
		} else {
			st.sm.RF[st.idx] &^= mask
		}
		st.sm.MarkRF(st.idx)
	case gpu.SMEM:
		mask := byte(1) << (st.bit % 8)
		if v {
			st.sm.Smem[st.idx] |= mask
		} else {
			st.sm.Smem[st.idx] &^= mask
		}
		st.sm.MarkSmem(st.idx)
	default:
		st.cache.SetBit(st.line, st.off, uint8(st.bit), v)
	}
}
