package campaign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gpurel/internal/faults"
)

// fakeExperiment classifies runs deterministically from the seeded RNG.
func fakeExperiment(run int, rng *rand.Rand) faults.Result {
	switch rng.Intn(10) {
	case 0:
		return faults.Result{Outcome: faults.SDC}
	case 1:
		return faults.Result{Outcome: faults.DUE}
	case 2:
		return faults.Result{Outcome: faults.Timeout}
	case 3:
		return faults.Result{Outcome: faults.Masked, CtrlAffected: true}
	default:
		return faults.Result{Outcome: faults.Masked}
	}
}

func TestTallyCounts(t *testing.T) {
	var tl Tally
	tl.Add(faults.Result{Outcome: faults.SDC})
	tl.Add(faults.Result{Outcome: faults.Masked})
	tl.Add(faults.Result{Outcome: faults.Masked, CtrlAffected: true})
	tl.Add(faults.Result{Outcome: faults.DUE})
	if tl.N != 4 || tl.Counts[faults.SDC] != 1 || tl.Counts[faults.Masked] != 2 {
		t.Errorf("tally = %+v", tl)
	}
	if tl.FR() != 0.5 {
		t.Errorf("FR = %v, want 0.5", tl.FR())
	}
	if tl.CtrlAffected != 1 || tl.CtrlAffectedPct() != 0.25 {
		t.Errorf("ctrl affected = %d (%v)", tl.CtrlAffected, tl.CtrlAffectedPct())
	}
}

// TestSchedulingIndependence: the tally must not depend on the worker count.
func TestSchedulingIndependence(t *testing.T) {
	t1 := Run(Options{Runs: 500, Seed: 42, Workers: 1}, fakeExperiment)
	t4 := Run(Options{Runs: 500, Seed: 42, Workers: 4}, fakeExperiment)
	t8 := Run(Options{Runs: 500, Seed: 42, Workers: 8}, fakeExperiment)
	t9 := Run(Options{Runs: 500, Seed: 42, Workers: 9}, fakeExperiment)
	if t1 != t4 || t1 != t8 || t1 != t9 {
		t.Errorf("tallies differ across worker counts:\n1: %+v\n4: %+v\n8: %+v\n9: %+v", t1, t4, t8, t9)
	}
}

// TestRunRangeSplitMerge: RunRange(0,k) merged with RunRange(k,n) must equal
// Run over n for any split point — the invariant the service's
// checkpoint/resume machinery relies on (a resumed job replays only the
// unexecuted indices, never the completed ones).
func TestRunRangeSplitMerge(t *testing.T) {
	const n = 400
	opts := Options{Runs: n, Seed: 42, Workers: 4}
	whole := Run(opts, fakeExperiment)
	for _, k := range []int{0, 1, 137, n / 2, n - 1, n} {
		lo := RunRange(opts, 0, k, fakeExperiment)
		hi := RunRange(opts, k, n, fakeExperiment)
		lo.Merge(hi)
		if lo != whole {
			t.Errorf("split at %d: merged %+v != whole %+v", k, lo, whole)
		}
	}
	// Three-way split with shuffled execution order.
	a := RunRange(opts, 250, n, fakeExperiment)
	b := RunRange(opts, 0, 100, fakeExperiment)
	c := RunRange(opts, 100, 250, fakeExperiment)
	a.Merge(b)
	a.Merge(c)
	if a != whole {
		t.Errorf("three-way merge %+v != whole %+v", a, whole)
	}
}

// TestRunRangeClamp: out-of-bounds ranges are clamped, empty ranges tally
// nothing.
func TestRunRangeClamp(t *testing.T) {
	opts := Options{Runs: 50, Seed: 9, Workers: 2}
	if tl := RunRange(opts, -10, 1000, fakeExperiment); tl != Run(opts, fakeExperiment) {
		t.Errorf("clamped range != full run: %+v", tl)
	}
	if tl := RunRange(opts, 30, 30, fakeExperiment); tl.N != 0 {
		t.Errorf("empty range tallied %d", tl.N)
	}
	if tl := RunRange(opts, 40, 20, fakeExperiment); tl.N != 0 {
		t.Errorf("inverted range tallied %d", tl.N)
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := Run(Options{Runs: 300, Seed: 1}, fakeExperiment)
	b := Run(Options{Runs: 300, Seed: 2}, fakeExperiment)
	if a == b {
		t.Error("different seeds should produce different tallies (overwhelmingly)")
	}
}

// TestPaperMargin verifies the ±2.35% at n=3000 claim of §II-A.
func TestPaperMargin(t *testing.T) {
	m := WorstCaseMargin99(3000)
	if math.Abs(m-0.0235) > 0.0005 {
		t.Errorf("worst-case margin at n=3000 = %.4f, paper says ~2.35%%", m)
	}
}

func TestErrMargin(t *testing.T) {
	var tl Tally
	for i := 0; i < 100; i++ {
		o := faults.Masked
		if i < 50 {
			o = faults.SDC
		}
		tl.Add(faults.Result{Outcome: o})
	}
	m := tl.ErrMargin99()
	want := z99 * math.Sqrt(0.25/100)
	if math.Abs(m-want) > 1e-12 {
		t.Errorf("margin = %v, want %v", m, want)
	}
	var empty Tally
	if empty.ErrMargin99() != 0 || empty.FR() != 0 || empty.Pct(faults.SDC) != 0 {
		t.Error("empty tally must be all zeros")
	}
}

// TestWilsonCI99: the Wilson interval covers the point estimate, stays in
// [0,1], and — unlike the normal approximation — does not collapse to a
// point at p=0 or p=1.
func TestWilsonCI99(t *testing.T) {
	// p=0 over 10 runs: normal margin lies (0), Wilson still spans ~40%.
	var clean Tally
	for i := 0; i < 10; i++ {
		clean.Add(faults.Result{Outcome: faults.Masked})
	}
	if clean.ErrMargin99() != 0 {
		t.Fatalf("normal margin at p=0 = %v (test premise)", clean.ErrMargin99())
	}
	lo, hi := clean.CI99()
	if lo != 0 || hi < 0.3 || hi > 0.5 {
		t.Errorf("Wilson CI at 0/10 = [%v, %v], want [0, ~0.40]", lo, hi)
	}
	if clean.Margin99() <= 0 {
		t.Errorf("Wilson margin at p=0 must stay positive, got %v", clean.Margin99())
	}

	// p=1 is symmetric.
	var dirty Tally
	for i := 0; i < 10; i++ {
		dirty.Add(faults.Result{Outcome: faults.SDC})
	}
	dlo, dhi := dirty.CI99()
	if math.Abs(dlo-(1-hi)) > 1e-12 || dhi != 1 {
		t.Errorf("Wilson CI at 10/10 = [%v, %v], want symmetric to [%v, %v]", dlo, dhi, lo, hi)
	}

	// Empty tally: vacuous interval, honest half-width.
	var empty Tally
	elo, ehi := empty.CI99()
	if elo != 0 || ehi != 1 || empty.Margin99() != 0.5 {
		t.Errorf("empty CI = [%v, %v], margin %v; want [0,1], 0.5", elo, ehi, empty.Margin99())
	}

	// Large-n, mid-p: Wilson converges to the normal approximation.
	var mid Tally
	for i := 0; i < 3000; i++ {
		o := faults.Masked
		if i < 1500 {
			o = faults.SDC
		}
		mid.Add(faults.Result{Outcome: o})
	}
	if d := math.Abs(mid.Margin99() - mid.ErrMargin99()); d > 1e-4 {
		t.Errorf("Wilson and normal margins diverge at n=3000, p=0.5: %v", d)
	}

	// Interval always contains the point estimate and is ordered.
	f := func(k8, n8 uint8) bool {
		n := int(n8)
		k := int(k8) % (n + 1)
		lo, hi := WilsonCI99(k, n)
		if lo > hi || lo < 0 || hi > 1 {
			return false
		}
		if n == 0 {
			return lo == 0 && hi == 1
		}
		p := float64(k) / float64(n)
		return lo <= p && p <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWorstCaseMarginDegenerate: a zero-size sample constrains nothing.
func TestWorstCaseMarginDegenerate(t *testing.T) {
	if !math.IsInf(WorstCaseMargin99(0), 1) || !math.IsInf(WorstCaseMargin99(-5), 1) {
		t.Errorf("WorstCaseMargin99(<=0) = %v, %v, want +Inf", WorstCaseMargin99(0), WorstCaseMargin99(-5))
	}
}

// TestMergeProperty: FR of a merged tally is the weighted mean.
func TestMergeProperty(t *testing.T) {
	f := func(sdc1, n1, sdc2, n2 uint8) bool {
		a := Tally{N: int(n1%50) + int(sdc1%20)}
		a.Counts[faults.SDC] = int(sdc1 % 20)
		a.Counts[faults.Masked] = int(n1 % 50)
		a.N = a.Counts[faults.SDC] + a.Counts[faults.Masked]
		b := Tally{}
		b.Counts[faults.SDC] = int(sdc2 % 20)
		b.Counts[faults.Masked] = int(n2 % 50)
		b.N = b.Counts[faults.SDC] + b.Counts[faults.Masked]
		m := a
		m.Merge(b)
		if m.N != a.N+b.N {
			return false
		}
		if m.Counts[faults.SDC] != a.Counts[faults.SDC]+b.Counts[faults.SDC] {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroRuns(t *testing.T) {
	tl := Run(Options{Runs: 0, Seed: 1}, fakeExperiment)
	if tl.N != 0 {
		t.Errorf("zero-run campaign tallied %d", tl.N)
	}
}
