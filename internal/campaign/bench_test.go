// Contention benchmark for the campaign work queue: the seed
// implementation handed out run indices under a mutex; Run now uses a
// single atomic claim counter. runMutexQueue below preserves the old
// dispatch verbatim so the two can be compared at high worker counts with
// a deliberately cheap experiment (queue overhead dominates).
//
//	go test ./internal/campaign -bench=Queue -benchtime=10x
package campaign

import (
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"gpurel/internal/faults"
)

// cheapExperiment is near-free so the benchmark measures dispatch cost,
// not injection cost.
func cheapExperiment(run int, rng *rand.Rand) faults.Result {
	if run%97 == 0 {
		return faults.Result{Outcome: faults.SDC}
	}
	return faults.Result{Outcome: faults.Masked}
}

// runMutexQueue is the pre-optimisation Run: a mutex-guarded next counter.
// Kept test-only as the "before" side of the benchmark.
func runMutexQueue(opts Options, fn Experiment) Tally {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Runs {
		workers = opts.Runs
	}
	var (
		mu   sync.Mutex
		t    Tally
		next int
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var local Tally
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= opts.Runs {
					break
				}
				local.Add(fn(i, rand.New(rand.NewSource(opts.Seed+int64(i)))))
			}
			mu.Lock()
			t.Merge(local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return t
}

// benchRuns keeps one benchmark iteration under a second even on a single
// core; on many-core machines the mutex/atomic gap opens up at the higher
// worker multiples (raise benchRuns for a cleaner signal there).
const benchRuns = 20_000

func benchWorkers() []int {
	p := runtime.GOMAXPROCS(0)
	return []int{p, 4 * p, 16 * p}
}

func BenchmarkQueueMutex(b *testing.B) {
	for _, w := range benchWorkers() {
		b.Run(workersLabel(w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tl := runMutexQueue(Options{Runs: benchRuns, Seed: 1, Workers: w}, cheapExperiment)
				if tl.N != benchRuns {
					b.Fatalf("lost runs: %d", tl.N)
				}
			}
		})
	}
}

func BenchmarkQueueAtomic(b *testing.B) {
	for _, w := range benchWorkers() {
		b.Run(workersLabel(w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tl := Run(Options{Runs: benchRuns, Seed: 1, Workers: w}, cheapExperiment)
				if tl.N != benchRuns {
					b.Fatalf("lost runs: %d", tl.N)
				}
			}
		})
	}
}

func workersLabel(w int) string { return "workers=" + strconv.Itoa(w) }

// TestQueueEquivalence pins the two dispatchers to the same tally so the
// benchmark comparison stays apples-to-apples.
func TestQueueEquivalence(t *testing.T) {
	opts := Options{Runs: 5000, Seed: 7, Workers: 8}
	if a, b := runMutexQueue(opts, cheapExperiment), Run(opts, cheapExperiment); a != b {
		t.Errorf("mutex and atomic dispatch disagree:\n%+v\n%+v", a, b)
	}
}
