// Contention benchmark for the campaign work queue: the seed
// implementation handed out run indices under a mutex; Run now uses a
// single atomic claim counter. runMutexQueue below preserves the old
// dispatch verbatim so the two can be compared at high worker counts with
// a deliberately cheap experiment (queue overhead dominates). The atomic
// side benchmarks through RunRange — the production entry point every
// dispatch path (Run, the service's chunked jobs) funnels into — with a
// nonzero start index so the range arithmetic is exercised too.
//
//	go test ./internal/campaign -bench=Queue -benchtime=10x
package campaign

import (
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"gpurel/internal/faults"
)

// cheapExperiment is near-free so the benchmark measures dispatch cost,
// not injection cost.
func cheapExperiment(run int, rng *rand.Rand) faults.Result {
	if run%97 == 0 {
		return faults.Result{Outcome: faults.SDC}
	}
	return faults.Result{Outcome: faults.Masked}
}

// runMutexQueue is the pre-optimisation dispatcher over [0, opts.Runs): a
// mutex-guarded next counter. Kept test-only as the "before" side of the
// benchmark; it intentionally does NOT reuse the production pool, that is
// the point of the comparison.
func runMutexQueue(opts Options, fn Experiment) Tally {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Runs {
		workers = opts.Runs
	}
	var (
		mu   sync.Mutex
		t    Tally
		next int
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var local Tally
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= opts.Runs {
					break
				}
				local.Add(fn(i, rand.New(rand.NewSource(opts.Seed+int64(i)))))
			}
			mu.Lock()
			t.Merge(local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return t
}

// benchRuns keeps one benchmark iteration under a second even on a single
// core; on many-core machines the mutex/atomic gap opens up at the higher
// worker multiples (raise benchRuns for a cleaner signal there).
const benchRuns = 20_000

func benchWorkers() []int {
	p := runtime.GOMAXPROCS(0)
	return []int{p, 4 * p, 16 * p}
}

func BenchmarkQueueMutex(b *testing.B) {
	for _, w := range benchWorkers() {
		b.Run(workersLabel(w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tl := runMutexQueue(Options{Runs: benchRuns, Seed: 1, Workers: w}, cheapExperiment)
				if tl.N != benchRuns {
					b.Fatalf("lost runs: %d", tl.N)
				}
			}
		})
	}
}

func BenchmarkQueueAtomic(b *testing.B) {
	for _, w := range benchWorkers() {
		b.Run(workersLabel(w), func(b *testing.B) {
			b.ReportAllocs()
			// A window [benchRuns, 2·benchRuns) of a larger campaign:
			// same workload size as the mutex side, but through the
			// range-clamping production path the service drives.
			opts := Options{Runs: 2 * benchRuns, Seed: 1, Workers: w}
			for i := 0; i < b.N; i++ {
				tl := RunRange(opts, benchRuns, 2*benchRuns, cheapExperiment)
				if tl.N != benchRuns {
					b.Fatalf("lost runs: %d", tl.N)
				}
			}
		})
	}
}

func workersLabel(w int) string { return "workers=" + strconv.Itoa(w) }

// TestQueueEquivalence pins the three dispatch paths — the old mutex
// queue, the atomic Run, and RunRange split at an arbitrary boundary and
// merged — to the same tally, so the benchmark comparison stays
// apples-to-apples and the service's chunked resume invariant holds.
func TestQueueEquivalence(t *testing.T) {
	opts := Options{Runs: 5000, Seed: 7, Workers: 8}
	want := runMutexQueue(opts, cheapExperiment)
	if got := Run(opts, cheapExperiment); got != want {
		t.Errorf("mutex and atomic dispatch disagree:\n%+v\n%+v", want, got)
	}
	for _, split := range []int{0, 1, 1234, 4999, 5000} {
		head := RunRange(opts, 0, split, cheapExperiment)
		tail := RunRange(opts, split, opts.Runs, cheapExperiment)
		head.Merge(tail)
		if head != want {
			t.Errorf("RunRange split at %d disagrees:\n%+v\n%+v", split, want, head)
		}
	}
}
