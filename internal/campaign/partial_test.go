package campaign

import (
	"math/rand"
	"testing"

	"gpurel/internal/faults"
)

func partialOutcome(rng *rand.Rand) faults.Result {
	switch rng.Intn(10) {
	case 0:
		return faults.Result{Outcome: faults.SDC}
	case 1:
		return faults.Result{Outcome: faults.DUE}
	default:
		return faults.Result{Outcome: faults.Masked}
	}
}

// TestPrefixMergerOutOfOrder: partials merged in any arrival order produce
// the same prefix tallies, at every boundary, as sequential execution.
func TestPrefixMergerOutOfOrder(t *testing.T) {
	const runs, seed, chunk = 240, 9, 30
	opts := Options{Runs: runs, Seed: seed, Workers: 1}
	fn := func(run int, rng *rand.Rand) faults.Result { return partialOutcome(rng) }

	var parts []Partial
	for from := 0; from < runs; from += chunk {
		parts = append(parts, Partial{From: from, To: from + chunk, Tally: RunRange(opts, from, from+chunk, fn)})
	}
	// Adversarial arrival order: reversed.
	m := NewPrefixMerger()
	for i := len(parts) - 1; i >= 0; i-- {
		if !m.Offer(parts[i]) {
			t.Fatalf("partial %+v rejected", parts[i])
		}
	}
	if m.To() != 0 || m.StashedRuns() != runs {
		t.Fatalf("before advance: prefix %d, stashed %d", m.To(), m.StashedRuns())
	}
	// Each Advance step must land on the next chunk boundary with the tally
	// of exactly that prefix.
	for want := chunk; want <= runs; want += chunk {
		to, tally, ok := m.Advance()
		if !ok || to != want {
			t.Fatalf("advance -> (%d, %v), want prefix %d", to, ok, want)
		}
		if seq := RunRange(opts, 0, want, fn); tally != seq {
			t.Fatalf("prefix [0,%d) tally %+v != sequential %+v", want, tally, seq)
		}
	}
	if _, _, ok := m.Advance(); ok {
		t.Fatal("advance past the full campaign")
	}
}

// TestPrefixMergerIdempotent: duplicate and overlapping partials are dropped,
// so double-reported work (expired-lease re-runs) merges exactly once.
func TestPrefixMergerIdempotent(t *testing.T) {
	m := NewPrefixMerger()
	one := Tally{N: 10}
	if !m.Offer(Partial{From: 0, To: 10, Tally: one}) {
		t.Fatal("fresh partial rejected")
	}
	if m.Offer(Partial{From: 0, To: 10, Tally: one}) {
		t.Fatal("duplicate stashed partial accepted")
	}
	if m.Offer(Partial{From: 5, To: 15, Tally: one}) {
		t.Fatal("overlapping partial accepted")
	}
	if to, _, ok := m.Advance(); !ok || to != 10 {
		t.Fatalf("advance -> %d, %v", to, ok)
	}
	if m.Offer(Partial{From: 0, To: 10, Tally: one}) {
		t.Fatal("late duplicate of merged work accepted")
	}
	if m.Tally().N != 10 {
		t.Fatalf("tally N = %d after duplicates, want 10", m.Tally().N)
	}
	// Disjoint later work is still welcome.
	if !m.Offer(Partial{From: 20, To: 30, Tally: one}) {
		t.Fatal("disjoint partial rejected")
	}
	if _, _, ok := m.Advance(); ok {
		t.Fatal("advanced across the [10,20) gap")
	}
	if got := m.StashRanges(); len(got) != 1 || got[0] != [2]int{20, 30} {
		t.Fatalf("stash ranges = %v", got)
	}
	m.DropStash()
	if m.StashedRuns() != 0 {
		t.Fatal("DropStash left runs behind")
	}
}

// TestPrefixMergerSeed: a merger seeded from a checkpoint continues exactly
// where the journal left off.
func TestPrefixMergerSeed(t *testing.T) {
	m := NewPrefixMerger()
	m.Seed(100, Tally{N: 100})
	if m.Offer(Partial{From: 90, To: 110, Tally: Tally{N: 20}}) {
		t.Fatal("partial overlapping the seeded prefix accepted")
	}
	if !m.Offer(Partial{From: 100, To: 110, Tally: Tally{N: 10}}) {
		t.Fatal("contiguous partial rejected")
	}
	if to, tally, ok := m.Advance(); !ok || to != 110 || tally.N != 110 {
		t.Fatalf("advance -> (%d, %+v, %v)", to, tally, ok)
	}
}
