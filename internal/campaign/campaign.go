// Package campaign runs statistical fault-injection campaigns: n independent
// experiments with per-run deterministic seeds, fanned out over a worker
// pool, tallied into outcome-class counts with the 99%-confidence error
// margin of the paper's methodology (±2.35% at n=3000, §II-A).
package campaign

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"gpurel/internal/faults"
)

// Tally aggregates the outcomes of one campaign.
type Tally struct {
	N            int
	Counts       [faults.NumOutcomes]int
	CtrlAffected int // masked runs with a control-path deviation (Fig. 11)
}

// Add accumulates one result.
func (t *Tally) Add(r faults.Result) {
	t.N++
	t.Counts[r.Outcome]++
	if r.Outcome == faults.Masked && r.CtrlAffected {
		t.CtrlAffected++
	}
}

// Merge adds another tally.
func (t *Tally) Merge(o Tally) {
	t.N += o.N
	for i := range t.Counts {
		t.Counts[i] += o.Counts[i]
	}
	t.CtrlAffected += o.CtrlAffected
}

// Pct returns the percentage of outcome class o, in [0,1].
func (t Tally) Pct(o faults.Outcome) float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.Counts[o]) / float64(t.N)
}

// FR is the failure rate: the probability of all non-masked outcomes,
// FR = Pct(SDC) + Pct(Timeout) + Pct(DUE).
func (t Tally) FR() float64 {
	return t.Pct(faults.SDC) + t.Pct(faults.Timeout) + t.Pct(faults.DUE)
}

// CtrlAffectedPct is the fraction of all runs that were masked but
// control-path affected.
func (t Tally) CtrlAffectedPct() float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.CtrlAffected) / float64(t.N)
}

// z99 is the normal quantile for 99% two-sided confidence.
const z99 = 2.5758293

// ErrMargin99 returns the normal-approximation half-width of the 99%
// confidence interval around the failure rate. At n=3000 and p=0.5 this is
// the paper's ±2.35%. The approximation degenerates at p=0 and p=1, where it
// collapses to a 0 half-width no matter how small n is — callers that make
// decisions from the margin (sequential stopping, report output) should use
// the Wilson-score Margin99/CI99 instead, which stay honest at the extremes.
func (t Tally) ErrMargin99() float64 {
	if t.N == 0 {
		return 0
	}
	p := t.FR()
	return z99 * math.Sqrt(p*(1-p)/float64(t.N))
}

// CI99 returns the Wilson-score 99% confidence interval [lo, hi] for the
// failure rate. Unlike the normal approximation it never collapses to a
// point at p=0 or p=1 (10 clean runs still leave hi ≈ 0.40), which is what
// makes it safe as a sequential stopping criterion. With no observations the
// interval is the vacuous [0, 1].
func (t Tally) CI99() (lo, hi float64) {
	return WilsonCI99(t.Counts[faults.SDC]+t.Counts[faults.Timeout]+t.Counts[faults.DUE], t.N)
}

// Margin99 is the half-width of the Wilson-score 99% interval — 0.5 for an
// empty tally rather than the false certainty of a 0 margin.
func (t Tally) Margin99() float64 {
	lo, hi := t.CI99()
	return (hi - lo) / 2
}

// WilsonCI99 computes the Wilson-score 99% interval for k successes in n
// trials. n <= 0 returns the vacuous [0, 1].
func WilsonCI99(k, n int) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z99 * z99
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z99 * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// WorstCaseMargin99 returns the margin at p=0.5, the a-priori bound quoted
// by the paper for its sample size. A sample of zero runs constrains nothing,
// so n <= 0 returns +Inf rather than a silent 0 (which read as perfect
// confidence); the campaign service rejects Runs <= 0 at submission instead.
func WorstCaseMargin99(n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return z99 * math.Sqrt(0.25/float64(n))
}

// Experiment runs one injection with the given run index and seeded RNG.
type Experiment func(run int, rng *rand.Rand) faults.Result

// Options configures a campaign.
type Options struct {
	Runs    int
	Seed    int64
	Workers int // 0 = GOMAXPROCS
}

// Run executes the campaign. Results are deterministic for a given seed:
// run i always uses rand.NewSource(Seed + i), independent of scheduling.
func Run(opts Options, fn Experiment) Tally {
	return RunRange(opts, 0, opts.Runs, fn)
}

// RunRange executes the half-open run-index range [from, to) of the
// campaign. Run i always uses rand.NewSource(Seed + i), so
// RunRange(o, 0, k, fn) merged with RunRange(o, k, n, fn) is identical to
// Run over n runs — the invariant checkpoint/resume in internal/service
// relies on. Ranges outside [0, Runs) are clamped.
func RunRange(opts Options, from, to int, fn Experiment) Tally {
	if from < 0 {
		from = 0
	}
	if to > opts.Runs {
		to = opts.Runs
	}
	n := to - from
	if n <= 0 {
		return Tally{}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var t Tally
		for i := from; i < to; i++ {
			t.Add(fn(i, rand.New(rand.NewSource(opts.Seed+int64(i)))))
		}
		return t
	}
	// The work queue is a single atomic claim counter: each worker grabs
	// the next unclaimed run index with one uncontended-in-the-fast-path
	// Add instead of a mutex round trip (hot at high worker counts).
	var (
		mu   sync.Mutex
		t    Tally
		next atomic.Int64
		wg   sync.WaitGroup
	)
	next.Store(int64(from))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var local Tally
			for {
				i := int(next.Add(1) - 1)
				if i >= to {
					break
				}
				local.Add(fn(i, rand.New(rand.NewSource(opts.Seed+int64(i)))))
			}
			mu.Lock()
			t.Merge(local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return t
}
