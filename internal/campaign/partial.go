package campaign

import "sort"

// Partial is the tally of one completed half-open run-index range [From, To)
// of a campaign — the unit of work a distributed executor (a fleet worker, a
// scheduler lane) reports back. Because run i always draws from
// rand.NewSource(Seed+i), a Partial is a pure function of (spec, From, To):
// two executors that run the same range report bit-identical partials, which
// is what makes merging idempotent by range.
type Partial struct {
	From  int
	To    int
	Tally Tally
}

// PrefixMerger folds completed Partials, arriving in any order, into the
// ordered tally of a contiguous run-index prefix [0, To()). Out-of-order
// partials are stashed until the gap before them closes; Advance then merges
// them one at a time, so callers can evaluate order-sensitive decision rules
// (the adaptive stop rule) at every intermediate prefix boundary — exactly
// the prefixes a sequential single-node execution would have evaluated.
//
// Offer is idempotent by range: a partial overlapping work already merged or
// stashed is dropped, so duplicated execution (an expired lease re-run by
// another worker whose original report arrives late) merges exactly once.
//
// PrefixMerger is not safe for concurrent use; callers hold their own lock.
type PrefixMerger struct {
	to    int
	tally Tally
	stash map[int]Partial // keyed by From; disjoint; every range starts >= to
}

// NewPrefixMerger returns an empty merger (prefix [0, 0)).
func NewPrefixMerger() *PrefixMerger {
	return &PrefixMerger{stash: map[int]Partial{}}
}

// Seed resets the merger to a checkpointed prefix: tally t covering exactly
// [0, to). The stash is discarded.
func (m *PrefixMerger) Seed(to int, t Tally) {
	m.to = to
	m.tally = t
	m.stash = map[int]Partial{}
}

// Offer adds one completed partial to the stash. It reports false — and
// changes nothing — when the range is empty or overlaps work already merged
// or stashed (a duplicate or late re-report of the same deterministic work).
func (m *PrefixMerger) Offer(p Partial) bool {
	if p.To <= p.From || p.From < m.to {
		return false
	}
	for _, q := range m.stash {
		if p.From < q.To && q.From < p.To {
			return false
		}
	}
	m.stash[p.From] = p
	return true
}

// Advance merges the next contiguous stashed partial into the prefix and
// returns the new prefix end with its tally. ok is false when the partial
// starting at To() has not arrived yet. Merging one partial per call lets
// the caller evaluate its stop rule at every boundary in order.
func (m *PrefixMerger) Advance() (to int, t Tally, ok bool) {
	p, ok := m.stash[m.to]
	if !ok {
		return m.to, m.tally, false
	}
	delete(m.stash, m.to)
	m.tally.Merge(p.Tally)
	m.to = p.To
	return m.to, m.tally, true
}

// To returns the contiguous prefix end: every run in [0, To()) is merged.
func (m *PrefixMerger) To() int { return m.to }

// Tally returns the tally of exactly the merged prefix [0, To()).
func (m *PrefixMerger) Tally() Tally { return m.tally }

// StashedRuns counts completed-but-not-yet-contiguous runs held in the stash.
func (m *PrefixMerger) StashedRuns() int {
	n := 0
	for _, p := range m.stash {
		n += p.To - p.From
	}
	return n
}

// StashRanges returns the stashed ranges sorted by From (tallies omitted) —
// the completed work beyond the prefix, used by schedulers to compute what is
// still outstanding.
func (m *PrefixMerger) StashRanges() [][2]int {
	froms := make([]int, 0, len(m.stash))
	for from := range m.stash { //relint:allow — keys are sorted before use
		froms = append(froms, from)
	}
	sort.Ints(froms)
	out := make([][2]int, 0, len(froms))
	for _, from := range froms {
		out = append(out, [2]int{from, m.stash[from].To})
	}
	return out
}

// DropStash discards every stashed partial — used when an adaptive stop rule
// fires at a prefix boundary and the work beyond it is no longer wanted.
func (m *PrefixMerger) DropStash() {
	m.stash = map[int]Partial{}
}
