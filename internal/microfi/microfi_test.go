package microfi

import (
	"fmt"
	"math/rand"
	"testing"

	"gpurel/internal/ace"
	"gpurel/internal/device"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
	"gpurel/internal/sim"
)

// saxpyJob builds a small float workload with shared memory so every
// structure is exercised.
func saxpyJob(n int) *device.Job {
	b := kasm.New("saxpy")
	tid := b.S2R(isa.SRTidX)
	i := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), tid)
	p := b.P()
	b.ISetpI(p, isa.CmpLT, i, int32(n))
	b.If(p, false, func() {
		x := b.Ldg(b.IScAdd(i, b.Param(0), 2), 0)
		b.Sts(b.Shl(tid, 2), 0, x)
		b.Barrier()
		y := b.Lds(b.Shl(tid, 2), 0)
		b.Stg(b.IScAdd(i, b.Param(1), 2), 0, b.FFma(b.MovF(2), x, y))
	})
	b.FreeP(p)
	prog := b.MustBuild()

	m := device.NewMemory(1 << 18)
	in := m.Alloc("in", 4*n)
	out := m.Alloc("out", 4*n)
	vals := make([]float32, n)
	for k := range vals {
		vals[k] = float32(k) * 0.5
	}
	m.WriteF32s(in, vals)
	return &device.Job{
		Name: "saxpy", Mem: m,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: prog, KernelName: "K1", GridX: 4, GridY: 1, BlockX: 64, BlockY: 1,
			SmemBytes: 4 * 64,
			Params:    []uint32{in, out}, ParamIsPtr: []bool{true, true},
		}}},
		Outputs: []device.Output{{Name: "out", Addr: out, Size: uint32(4 * n)}},
	}
}

func TestGolden(t *testing.T) {
	job := saxpyJob(256)
	g, err := Golden(job, gpu.Volta())
	if err != nil {
		t.Fatal(err)
	}
	if g.Res.Cycles == 0 || len(g.Res.Spans) != 1 {
		t.Fatalf("golden run incomplete: %+v", g.Res)
	}
}

func TestTargetWindowsAndDF(t *testing.T) {
	job := saxpyJob(256)
	g, err := Golden(job, gpu.Volta())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range gpu.Structures {
		tgt := Target{Structure: st, Kernel: "K1"}
		if tgt.Windows(g) <= 0 {
			t.Errorf("%s: empty windows", st)
		}
		df := tgt.DF(g)
		if df < 0 || df > 1 {
			t.Errorf("%s: DF = %v out of range", st, df)
		}
		switch st {
		case gpu.RF, gpu.SMEM:
			if df == 0 || df == 1 {
				t.Errorf("%s: DF = %v, expected a proper fraction", st, df)
			}
		default:
			if df != 1 {
				t.Errorf("%s: caches must have DF=1, got %v", st, df)
			}
		}
	}
	// unknown kernel → no windows
	none := Target{Structure: gpu.RF, Kernel: "nope"}
	if none.Windows(g) != 0 {
		t.Error("unknown kernel must have an empty window")
	}
}

func TestInjectAllStructures(t *testing.T) {
	job := saxpyJob(256)
	g, err := Golden(job, gpu.Volta())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range gpu.Structures {
		tgt := Target{Structure: st, Kernel: "K1"}
		var counts [faults.NumOutcomes]int
		for seed := int64(0); seed < 40; seed++ {
			r := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
			counts[r.Outcome]++
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != 40 {
			t.Errorf("%s: lost runs: %v", st, counts)
		}
		if st == gpu.RF && counts[faults.Masked] == 40 {
			t.Errorf("RF: 40 injections all masked — injection not effective")
		}
	}
}

func TestInjectDeterminism(t *testing.T) {
	job := saxpyJob(256)
	g, _ := Golden(job, gpu.Volta())
	tgt := Target{Structure: gpu.RF, Kernel: "K1"}
	for seed := int64(0); seed < 10; seed++ {
		a := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
		b := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
		if a.Outcome != b.Outcome {
			t.Fatalf("seed %d: %v vs %v", seed, a.Outcome, b.Outcome)
		}
	}
}

func TestClassify(t *testing.T) {
	job := saxpyJob(64)
	g, _ := Golden(job, gpu.Volta())
	cases := []struct {
		res  *sim.Result
		want faults.Outcome
	}{
		{&sim.Result{TimedOut: true}, faults.Timeout},
		{&sim.Result{Err: fmt.Errorf("boom")}, faults.DUE},
		{&sim.Result{DUEFlag: true, Output: g.Res.Output}, faults.DUE},
		{&sim.Result{Output: append([]byte{1}, g.Res.Output[1:]...)}, faults.SDC},
		{&sim.Result{Output: g.Res.Output, Cycles: g.Res.Cycles}, faults.Masked},
	}
	for i, c := range cases {
		got := Classify(g, c.res, true)
		if got.Outcome != c.want {
			t.Errorf("case %d: %v, want %v", i, got.Outcome, c.want)
		}
	}
	// control-path proxy: masked but different cycle count
	r := Classify(g, &sim.Result{Output: g.Res.Output, Cycles: g.Res.Cycles + 5}, true)
	if r.Outcome != faults.Masked || !r.CtrlAffected {
		t.Errorf("cycle deviation must flag CtrlAffected: %+v", r)
	}
}

// TestSDCByteFlipInOutputCache: flip a bit of the L2 line that holds output
// data right before the end of the kernel — the §V-B "written back without
// being read again" scenario must surface as an SDC.
func TestSDCByteFlipInOutputCache(t *testing.T) {
	job := saxpyJob(256)
	cfg := gpu.Volta()
	g, _ := Golden(job, gpu.Volta())
	sdc := 0
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// inject very late, into L2 data
		cycle := g.Res.Cycles - 2
		res := sim.Run(job, cfg, sim.Options{
			MaxCycles: g.Res.Cycles * 10,
			AtCycle:   cycle,
			OnCycle: func(m *sim.Machine) {
				// pick among dirty lines (the output data awaiting writeback)
				var dirty []int
				for i := 0; i < m.L2.NumLines(); i++ {
					if ln := m.L2.LineAt(i); ln.Valid && ln.Dirty {
						dirty = append(dirty, i)
					}
				}
				if len(dirty) == 0 {
					return
				}
				line := dirty[rng.Intn(len(dirty))]
				m.L2.FlipBit(line, uint32(rng.Intn(64)), uint8(rng.Intn(8)))
			},
		})
		if Classify(g, res, true).Outcome == faults.SDC {
			sdc++
		}
	}
	if sdc == 0 {
		t.Error("late L2 flips never corrupted the output — writeback path broken")
	}
}

// TestInjectPrunedEquivalence is the load-bearing property behind
// liveness-guided pruning: for every seed, InjectPruned must classify
// bit-identically to the brute-force Inject — same outcome, same detail,
// same control-affected flag — while skipping the simulation on provably
// dead sites. Run over enough seeds to exercise live, dead, and
// empty-window paths.
func TestInjectPrunedEquivalence(t *testing.T) {
	job := saxpyJob(256)
	cfg := gpu.Volta()
	g, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := ace.TraceRF(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, burst := range []int{1, 2} {
		tgt := Target{Structure: gpu.RF, Kernel: "K1", Burst: burst}
		pruned, simulated := 0, 0
		for seed := int64(0); seed < 150; seed++ {
			want := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
			got, wasPruned := InjectPruned(job, g, lv, tgt, rand.New(rand.NewSource(seed)))
			if got != want {
				t.Fatalf("burst %d seed %d: pruned %+v != brute-force %+v (pruned=%v)",
					burst, seed, got, want, wasPruned)
			}
			if wasPruned {
				pruned++
				if got.Outcome != faults.Masked {
					t.Fatalf("burst %d seed %d: pruned a non-masked outcome %+v", burst, seed, got)
				}
			} else {
				simulated++
			}
		}
		t.Logf("burst %d: %d pruned, %d simulated", burst, pruned, simulated)
		if pruned == 0 {
			t.Errorf("burst %d: no runs pruned — liveness map finds no dead sites", burst)
		}
		if simulated == 0 {
			t.Errorf("burst %d: all runs pruned — suspiciously aggressive", burst)
		}
	}
}

// TestInjectPrunedNonRF: other structures fall through to Inject verbatim.
func TestInjectPrunedNonRF(t *testing.T) {
	job := saxpyJob(128)
	cfg := gpu.Volta()
	g, _ := Golden(job, cfg)
	lv, err := ace.TraceRF(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []gpu.Structure{gpu.SMEM, gpu.L1D, gpu.L2} {
		tgt := Target{Structure: st, Kernel: "K1"}
		for seed := int64(0); seed < 25; seed++ {
			want := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
			got, wasPruned := InjectPruned(job, g, lv, tgt, rand.New(rand.NewSource(seed)))
			if wasPruned {
				t.Fatalf("%s: non-RF run must never be pruned", st)
			}
			if got != want {
				t.Fatalf("%s seed %d: %+v != %+v", st, seed, got, want)
			}
		}
	}
	// ECC-screened runs classify without simulation on both paths.
	eccCfg := gpu.Volta().WithECC(gpu.RF)
	gECC, _ := Golden(job, eccCfg)
	lvECC, _ := ace.TraceRF(job, eccCfg)
	r, wasPruned := InjectPruned(job, gECC, lvECC, Target{Structure: gpu.RF, Kernel: "K1"}, rand.New(rand.NewSource(1)))
	if wasPruned || r.Outcome != faults.Masked || r.Detail != "corrected by ECC" {
		t.Errorf("ECC screen must not count as pruning: %+v pruned=%v", r, wasPruned)
	}
}

func TestMultiBitBurst(t *testing.T) {
	job := saxpyJob(256)
	g, _ := Golden(job, gpu.Volta())
	tgt := Target{Structure: gpu.RF, Kernel: "K1", Burst: 3}
	r := Inject(job, g, tgt, rand.New(rand.NewSource(5)))
	if r.Outcome >= faults.NumOutcomes {
		t.Errorf("burst injection produced bad outcome %v", r.Outcome)
	}
}

// TestECCProtection: SEC-DED on a structure corrects singles and converts
// doubles into DUEs; triples strike through.
func TestECCProtection(t *testing.T) {
	job := saxpyJob(128)
	cfg := gpu.Volta().WithECC(gpu.RF)
	g, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	single := Target{Structure: gpu.RF, Kernel: "K1", Burst: 1}
	double := Target{Structure: gpu.RF, Kernel: "K1", Burst: 2}
	triple := Target{Structure: gpu.RF, Kernel: "K1", Burst: 3}
	for seed := int64(0); seed < 20; seed++ {
		if r := Inject(job, g, single, rand.New(rand.NewSource(seed))); r.Outcome != faults.Masked {
			t.Fatalf("ECC must correct single-bit faults, got %v", r.Outcome)
		}
		if r := Inject(job, g, double, rand.New(rand.NewSource(seed))); r.Outcome != faults.DUE {
			t.Fatalf("ECC must detect double-bit faults as DUE, got %v", r.Outcome)
		}
	}
	// triples bypass SEC-DED: at least one run must escape as non-DUE-non-masked
	// or corrupt state (any outcome is legal, but injection must happen)
	escaped := false
	for seed := int64(0); seed < 30; seed++ {
		r := Inject(job, g, triple, rand.New(rand.NewSource(seed)))
		if r.Outcome == faults.SDC || r.Outcome == faults.Timeout {
			escaped = true
		}
	}
	if !escaped {
		t.Log("no triple-burst corruption observed at this sample size (acceptable)")
	}
	// unprotected structures unaffected by the RF ECC flag
	l2 := Target{Structure: gpu.L2, Kernel: "K1", Burst: 1}
	sawNonMasked := false
	for seed := int64(0); seed < 60; seed++ {
		if r := Inject(job, g, l2, rand.New(rand.NewSource(seed))); r.Outcome != faults.Masked {
			sawNonMasked = true
		}
	}
	if !sawNonMasked {
		t.Log("all L2 injections masked at this sample size")
	}
}
