package microfi

import (
	"fmt"
	"math/rand"

	"gpurel/internal/device"
	"gpurel/internal/faults"
	"gpurel/internal/flow"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/sim"
)

// The Recorder must keep implementing the scheduler-trace shape the
// simulator exports; flow cannot import sim, so the structural contract is
// pinned here.
var _ sim.SchedTracer = (*flow.Recorder)(nil)

// StaticDead maps each kernel program to its statically-dead register map
// (per architectural register, true when flow analysis proves no execution
// can ever read a value stored there). Unlike the ace.Liveness map it needs
// no golden-run trace — it is a pure function of the instruction stream.
type StaticDead map[*isa.Program][]bool

// StaticDeadRegs computes flow.AlwaysDead for every kernel the job launches.
func StaticDeadRegs(job *device.Job) StaticDead {
	dead := StaticDead{}
	for i := range job.Steps {
		if l := job.Steps[i].Launch; l != nil && l.Kernel != nil {
			if _, done := dead[l.Kernel]; !done {
				dead[l.Kernel] = flow.AlwaysDead(l.Kernel)
			}
		}
	}
	return dead
}

// StaticIntervals is the static ACE-interval map of one job: the flow
// interval engine's per-site dead/live intervals over the deterministic
// scheduled trace, plus the launch spans needed to scope queries to a
// kernel. Computed once per job by TraceStatic (one fault-free run, like
// ace.TraceRF) and shared by every injection thereafter.
type StaticIntervals struct {
	IV     *flow.Intervals
	Spans  []sim.LaunchSpan
	Cycles int64
}

// TraceStatic runs the job fault-free with the flow interval recorder
// attached and returns the finalized static interval map.
func TraceStatic(job *device.Job, cfg gpu.Config) (*StaticIntervals, error) {
	rec := flow.NewRecorder()
	res := sim.Run(job, cfg, sim.Options{SchedTrace: rec})
	if res.Err != nil {
		return nil, fmt.Errorf("microfi: static interval trace failed: %w", res.Err)
	}
	if res.TimedOut {
		return nil, fmt.Errorf("microfi: static interval trace timed out")
	}
	return &StaticIntervals{IV: rec.Finalize(res.Cycles), Spans: res.Spans, Cycles: res.Cycles}, nil
}

// Bounds returns the static AVF bracket for one structure over the
// injection windows of the named kernel (every launch when kernel is "").
// RF and SMEM are derived from the interval map; caches and control state
// are outside the engine's reach and return the trivial unsupported [0, 1]
// bracket.
func (si *StaticIntervals) Bounds(st gpu.Structure, kernel string) flow.Bounds {
	var ws []flow.Window
	for _, s := range si.Spans {
		if kernel == "" || s.Kernel == kernel {
			ws = append(ws, flow.Window{Start: s.Start, End: s.End})
		}
	}
	switch st {
	case gpu.RF:
		return si.IV.RFBounds(ws)
	case gpu.SMEM:
		return si.IV.SmemBounds(ws)
	}
	return flow.Bounds{Supported: false, Lower: 0, Upper: 1}
}

// InjectStatic performs the same experiment as Inject — bit-identically for
// any (seed, run) pair — but classifies injections landing in a statically
// dead interval as Masked without simulating them. The second return value
// reports whether the run was pruned (classified analytically). Structures
// other than RF and SMEM, and ECC-screened or empty-window runs, fall
// through to the exact Inject behaviour with pruned=false.
//
// The equivalence argument mirrors InjectPruned's: the faulty run is
// deterministic and identical to golden up to the injection cycle, the
// static allocation timeline replays the injector's enumeration (SMs in
// index order, blocks in CTA placement order) bit-compatibly, and the RNG
// draws (cycle, entry, bit) happen in the same order with the same bounds.
// The interval map is computed from *static* instruction effects along the
// scheduled trace, so it over-approximates dynamic liveness: a site outside
// every live interval is provably never consumed before overwrite or
// deallocation, and the brute-force run would classify Masked with no
// control-flow effect. Unlike the boolean InjectStaticDead prune this is
// cycle-aware — a register (or shared-memory word) that is live somewhere
// is still pruned at the cycles where it provably is not — and it covers
// shared memory, which the always-dead prune cannot touch at all.
func InjectStatic(job *device.Job, g *GoldenRun, si *StaticIntervals, t Target, rng *rand.Rand) (faults.Result, bool) {
	if si == nil || (t.Structure != gpu.RF && t.Structure != gpu.SMEM) {
		return Inject(job, g, t, rng), false
	}
	cycle, width, r, done := t.preflight(g, rng)
	if done {
		return r, false
	}
	// Replay the transient model's site selection from the static
	// allocation timeline (the faultmodel.pickAllocated enumeration).
	var (
		scratch [8]flow.Blk
		smOf    []int
		total   int
	)
	blocksAt, bits := si.IV.RFBlocksAt, 32
	if t.Structure == gpu.SMEM {
		blocksAt, bits = si.IV.SmemBlocksAt, 8
	}
	blocks := scratch[:0]
	for sm := 0; sm < si.IV.NumSMs(); sm++ {
		n := len(blocks)
		blocks = blocksAt(sm, cycle, blocks)
		for range blocks[n:] {
			smOf = append(smOf, sm)
		}
	}
	for _, b := range blocks {
		total += b.Size
	}
	if total == 0 {
		// The brute-force run would simulate, find nothing allocated, and
		// classify the unperturbed (hence golden-identical) run as Masked.
		return faults.Result{Outcome: faults.Masked, Detail: "no allocated entry at injection cycle"}, true
	}
	k := rng.Intn(total)
	bit := uint(rng.Intn(bits))
	for i, b := range blocks {
		if k < b.Size {
			sm, idx := smOf[i], b.Base+k
			live := si.IV.LiveRF(sm, idx, cycle)
			if t.Structure == gpu.SMEM {
				live = si.IV.LiveSmem(sm, idx, cycle)
			}
			if !live {
				// Provably dead interval: the corrupted value is never consumed.
				return faults.Result{Outcome: faults.Masked}, true
			}
			return injectRun(job, g, cycle, func(m *sim.Machine) bool {
				for w := 0; w < width; w++ {
					if t.Structure == gpu.SMEM {
						m.SMs[sm].Smem[idx] ^= 1 << ((bit + uint(w)) % 8)
					} else {
						m.SMs[sm].RF[idx] ^= 1 << ((bit + uint(w)) % 32)
					}
				}
				if t.Structure == gpu.SMEM {
					m.SMs[sm].MarkSmem(idx)
				} else {
					m.SMs[sm].MarkRF(idx)
				}
				return true
			}), false
		}
		k -= b.Size
	}
	// Unreachable: k < total = Σ sizes.
	panic("microfi: site selection overran the static allocation timeline")
}

// ctaBlock pairs an allocated RF region with its SM, additionally carrying
// the owning program.
type ctaBlock struct {
	sm  *sim.SM
	blk sim.CTABlock
}

// InjectStaticDead is the boolean predecessor of InjectStatic: it performs
// the same experiment as Inject — bit-identically for any (seed, run) pair
// — but classifies hits on statically always-dead architectural registers
// as Masked without finishing the faulty simulation. The second return
// value reports whether the run was pruned. It is kept as the baseline the
// interval prune is property-tested against (every run it prunes, the
// interval prune must also prune).
//
// Unlike InjectPruned and InjectStatic it needs no golden-run trace at all:
// the simulation runs up to the injection cycle (that prefix is fault-free,
// hence identical to golden), the injector replays the transient model's
// RNG draws against the machine's resident CTA blocks, and maps the chosen
// physical register back to its architectural index (offset % NumRegs
// within the owning CTA's per-thread frame). If flow analysis proved that
// register can never be read, the value is unobservable: the rest of the
// run would replay golden exactly, so the brute-force outcome is Masked
// with no control-flow effect, and the simulation is abandoned via
// Machine.StopRun. Otherwise the bit flips and the run completes and
// classifies as usual.
func InjectStaticDead(job *device.Job, g *GoldenRun, dead StaticDead, t Target, rng *rand.Rand) (faults.Result, bool) {
	if t.Structure != gpu.RF || dead == nil {
		return Inject(job, g, t, rng), false
	}
	cycle, width, r, done := t.preflight(g, rng)
	if done {
		return r, false
	}
	hit := false
	pruned := false
	opts := sim.Options{
		MaxCycles: g.Res.Cycles * int64(g.Cfg.TimeoutFactor),
		AtCycle:   cycle,
		Legacy:    g.Legacy,
		OnCycle: func(m *sim.Machine) {
			// Replay the transient model's site selection exactly: SMs in
			// index order, blocks in CTA placement order, then (entry, bit)
			// draws (the faultmodel.pickAllocated enumeration).
			var blocks []ctaBlock
			total := 0
			for _, sm := range m.SMs {
				for _, b := range sm.ResidentRF() {
					blocks = append(blocks, ctaBlock{sm, b})
					total += b.Size
				}
			}
			if total == 0 {
				return // flip would return false having drawn nothing
			}
			k := rng.Intn(total)
			bit := uint(rng.Intn(32))
			for _, cb := range blocks {
				if k < cb.blk.Size {
					arch := k % cb.blk.Prog.NumRegs
					if d := dead[cb.blk.Prog]; arch < len(d) && d[arch] {
						pruned = true
						m.StopRun()
						return
					}
					for w := 0; w < width; w++ {
						cb.sm.RF[cb.blk.Base+k] ^= 1 << ((bit + uint(w)) % 32)
					}
					cb.sm.MarkRF(cb.blk.Base + k)
					hit = true
					return
				}
				k -= cb.blk.Size
			}
		},
	}
	g.accelerate(&opts, cycle)
	res := sim.Run(job, g.Cfg, opts)
	if pruned {
		return faults.Result{Outcome: faults.Masked}, true
	}
	if res.Converged {
		return g.classifyConverged(res, hit), false
	}
	return Classify(g, res, hit), false
}
