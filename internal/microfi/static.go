package microfi

import (
	"math/rand"

	"gpurel/internal/device"
	"gpurel/internal/faults"
	"gpurel/internal/flow"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/sim"
)

// StaticDead maps each kernel program to its statically-dead register map
// (per architectural register, true when flow analysis proves no execution
// can ever read a value stored there). Unlike the ace.Liveness map it needs
// no golden-run trace — it is a pure function of the instruction stream.
type StaticDead map[*isa.Program][]bool

// StaticDeadRegs computes flow.AlwaysDead for every kernel the job launches.
func StaticDeadRegs(job *device.Job) StaticDead {
	dead := StaticDead{}
	for i := range job.Steps {
		if l := job.Steps[i].Launch; l != nil && l.Kernel != nil {
			if _, done := dead[l.Kernel]; !done {
				dead[l.Kernel] = flow.AlwaysDead(l.Kernel)
			}
		}
	}
	return dead
}

// ctaBlock pairs an allocated RF region with its SM, additionally carrying
// the owning program.
type ctaBlock struct {
	sm  *sim.SM
	blk sim.CTABlock
}

// InjectStatic performs the same experiment as Inject — bit-identically for
// any (seed, run) pair — but classifies hits on statically-dead architectural
// registers as Masked without finishing the faulty simulation. The second
// return value reports whether the run was pruned.
//
// Unlike InjectPruned it needs no golden-run liveness trace: the simulation
// runs up to the injection cycle (that prefix is fault-free, hence identical
// to golden), the injector replays the transient model's RNG draws against
// the machine's resident CTA blocks, and maps the chosen physical register back to its
// architectural index (offset % NumRegs within the owning CTA's per-thread
// frame). If flow analysis proved that register can never be read, the value
// is unobservable: the rest of the run would replay golden exactly, so the
// brute-force outcome is Masked with no control-flow effect, and the
// simulation is abandoned via Machine.StopRun. Otherwise the bit flips and
// the run completes and classifies as usual.
func InjectStatic(job *device.Job, g *GoldenRun, dead StaticDead, t Target, rng *rand.Rand) (faults.Result, bool) {
	if t.Structure != gpu.RF || dead == nil {
		return Inject(job, g, t, rng), false
	}
	cycle, width, r, done := t.preflight(g, rng)
	if done {
		return r, false
	}
	hit := false
	pruned := false
	opts := sim.Options{
		MaxCycles: g.Res.Cycles * int64(g.Cfg.TimeoutFactor),
		AtCycle:   cycle,
		OnCycle: func(m *sim.Machine) {
			// Replay the transient model's site selection exactly: SMs in
			// index order, blocks in CTA placement order, then (entry, bit)
			// draws (the faultmodel.pickAllocated enumeration).
			var blocks []ctaBlock
			total := 0
			for _, sm := range m.SMs {
				for _, b := range sm.ResidentRF() {
					blocks = append(blocks, ctaBlock{sm, b})
					total += b.Size
				}
			}
			if total == 0 {
				return // flip would return false having drawn nothing
			}
			k := rng.Intn(total)
			bit := uint(rng.Intn(32))
			for _, cb := range blocks {
				if k < cb.blk.Size {
					arch := k % cb.blk.Prog.NumRegs
					if d := dead[cb.blk.Prog]; arch < len(d) && d[arch] {
						pruned = true
						m.StopRun()
						return
					}
					for w := 0; w < width; w++ {
						cb.sm.RF[cb.blk.Base+k] ^= 1 << ((bit + uint(w)) % 32)
					}
					hit = true
					return
				}
				k -= cb.blk.Size
			}
		},
	}
	g.accelerate(&opts, cycle)
	res := sim.Run(job, g.Cfg, opts)
	if pruned {
		return faults.Result{Outcome: faults.Masked}, true
	}
	if res.Converged {
		return g.classifyConverged(res, hit), false
	}
	return Classify(g, res, hit), false
}
