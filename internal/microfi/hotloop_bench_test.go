package microfi

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/kernels"
)

// BenchmarkInject_Throughput is the hot-loop acceptance benchmark: a fixed
// checkpointed RF campaign on the pre-decoded µop core must sustain at
// least 3× the single-core runs/sec of the reference engine
// (CheckpointSpec.Legacy — the verbatim pre-overhaul execution loop,
// scheduler, full-copy snapshot restores, and standalone snapshot
// accounting), while tallying bit-identically.
//
// The comparison holds the snapshot *memory budget* equal, not the
// checkpoint grid: both cores ask for a dense grid under the same
// BudgetBytes, and each retains what its snapshot representation can
// afford. Copy-on-write page sharing lets the µop core keep the full grid
// where the reference core's standalone snapshots force budget-driven
// stride widening — exactly the trade the pre-overhaul engine faced — so
// faulty forks on the fast core resume closer to their injection cycle.
//
// With GPUREL_BENCH_JSON set, a machine-readable summary is written there
// for the CI artifact.
func BenchmarkInject_Throughput(b *testing.B) {
	cfg := gpu.Volta()
	app, err := kernels.ByName("SRADv1")
	if err != nil {
		b.Fatal(err)
	}
	job := app.Build()
	probe, err := Golden(job, cfg)
	if err != nil {
		b.Fatal(err)
	}
	const (
		runs      = 60
		gridSnaps = 64
		budget    = 48 << 20
	)
	spec := CheckpointSpec{Stride: probe.Res.Cycles / gridSnaps, BudgetBytes: budget, Converge: true}
	fast, err := GoldenCheckpointed(job, cfg, spec)
	if err != nil {
		b.Fatal(err)
	}
	spec.Legacy = true
	slow, err := GoldenCheckpointed(job, cfg, spec)
	if err != nil {
		b.Fatal(err)
	}
	fastCk, slowCk := fast.CheckpointCounts(), slow.CheckpointCounts()
	b.Logf("snapshots in %dMB budget: µop/COW %d (%.1fMB), reference %d (%.1fMB)",
		budget>>20, fastCk.Snapshots, float64(fastCk.SnapshotBytes)/(1<<20),
		slowCk.Snapshots, float64(slowCk.SnapshotBytes)/(1<<20))
	tgt := Target{Structure: gpu.RF}
	opts := campaign.Options{Runs: runs, Seed: 11, Workers: 1}

	// Alternate the two cores and keep each side's best pass: a transient
	// load spike then degrades one measurement of one side, not the ratio.
	const passes = 2
	var slowTally, fastTally campaign.Tally
	var slowDur, fastDur time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var slowBest, fastBest time.Duration
		for p := 0; p < passes; p++ {
			t0 := time.Now()
			slowTally = campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
				return Inject(job, slow, tgt, rng)
			})
			t1 := time.Now()
			fastTally = campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
				return Inject(job, fast, tgt, rng)
			})
			fd, sd := time.Since(t1), t1.Sub(t0)
			if p == 0 || sd < slowBest {
				slowBest = sd
			}
			if p == 0 || fd < fastBest {
				fastBest = fd
			}
		}
		slowDur += slowBest
		fastDur += fastBest
	}
	b.StopTimer()

	if fastTally != slowTally {
		b.Fatalf("µop-core tally %+v != reference-engine tally %+v", fastTally, slowTally)
	}
	total := runs * b.N
	fastRPS := float64(total) / fastDur.Seconds()
	slowRPS := float64(total) / slowDur.Seconds()
	speedup := fastRPS / slowRPS
	if speedup < 3 {
		b.Fatalf("µop core only %.2f× the reference engine's throughput (%.1f vs %.1f runs/sec), want >= 3×",
			speedup, fastRPS, slowRPS)
	}
	b.ReportMetric(speedup, "x-speedup")
	b.ReportMetric(fastRPS, "runs/sec")
	b.ReportMetric(float64(fastDur.Nanoseconds())/float64(total), "ns/run")

	if path := os.Getenv("GPUREL_BENCH_JSON"); path != "" {
		out, err := json.MarshalIndent(map[string]any{
			"benchmark":        "Inject_Throughput",
			"app":              app.Name,
			"runs":             total,
			"budget_bytes":     int64(budget),
			"snapshots":        fastCk.Snapshots,
			"legacy_snapshots": slowCk.Snapshots,
			"runs_per_sec":     fastRPS,
			"legacy_runs_sec":  slowRPS,
			"speedup":          speedup,
			"ns_run":           float64(fastDur.Nanoseconds()) / float64(total),
			"legacy_ns_run":    float64(slowDur.Nanoseconds()) / float64(total),
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
