package microfi

import (
	"math/rand"
	"testing"

	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/faultmodel"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/kernels"
)

// The hot-loop overhaul ships two complete execution cores: the pre-decoded
// µop interpreter with copy-on-write snapshots, and the reference
// decode-and-switch core (GoldenRun.Legacy / CheckpointSpec.Legacy). These
// tests pin the injection-layer property that makes the overhaul safe to
// ship: every injection path must tally bit-identically on both cores —
// faulty runs included, where the cores execute corrupted programs whose
// trajectories never appeared in any golden run.

// TestLegacyParityBruteForce: brute-force InjectModel campaigns across
// structures × fault models must tally identically on both cores. VA covers
// the storage arrays; LUD (real barriers and divergence) the control sites.
func TestLegacyParityBruteForce(t *testing.T) {
	cfg := gpu.Volta()
	cases := []struct {
		app        string
		structures []gpu.Structure
		models     map[string]faultmodel.Model
	}{
		{"VA", gpu.Structures[:], storageModels()},
		{"LUD", gpu.ControlStructures[:], controlModels()},
	}
	for _, cs := range cases {
		cs := cs
		t.Run(cs.app, func(t *testing.T) {
			app, err := kernels.ByName(cs.app)
			if err != nil {
				t.Fatal(err)
			}
			job := app.Build()
			fast, err := Golden(job, cfg)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := Golden(job, cfg)
			if err != nil {
				t.Fatal(err)
			}
			slow.Legacy = true
			for name, mdl := range cs.models {
				for _, st := range cs.structures {
					tgt := Target{Structure: st}
					for seed := int64(1); seed <= 2; seed++ {
						opts := campaign.Options{Runs: 2, Seed: seed}
						want := campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
							return InjectModel(job, slow, tgt, mdl, rng)
						})
						got := campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
							return InjectModel(job, fast, tgt, mdl, rng)
						})
						if got != want {
							t.Errorf("%s %s seed %d: µop tally %+v != reference %+v",
								name, st, seed, got, want)
						}
					}
				}
			}
		})
	}
}

// TestLegacyParityCheckpointed: the checkpointed fork-and-join path with the
// golden captured by each core — legacy capture exercises standalone
// snapshot save/restore, fast capture the COW pages — must tally
// identically across structures × fault models.
func TestLegacyParityCheckpointed(t *testing.T) {
	cfg := gpu.Volta()
	cases := []struct {
		app        string
		structures []gpu.Structure
		models     map[string]faultmodel.Model
	}{
		{"VA", gpu.Structures[:], storageModels()},
		{"LUD", gpu.ControlStructures[:], controlModels()},
	}
	for _, cs := range cases {
		cs := cs
		t.Run(cs.app, func(t *testing.T) {
			app, err := kernels.ByName(cs.app)
			if err != nil {
				t.Fatal(err)
			}
			job := app.Build()
			probe, err := Golden(job, cfg)
			if err != nil {
				t.Fatal(err)
			}
			spec := ckSpecFor(probe, true)
			fast, err := GoldenCheckpointed(job, cfg, spec)
			if err != nil {
				t.Fatal(err)
			}
			spec.Legacy = true
			slow, err := GoldenCheckpointed(job, cfg, spec)
			if err != nil {
				t.Fatal(err)
			}
			for name, mdl := range cs.models {
				for _, st := range cs.structures {
					tgt := Target{Structure: st}
					opts := campaign.Options{Runs: 2, Seed: 3}
					want := campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
						return InjectModel(job, slow, tgt, mdl, rng)
					})
					got := campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
						return InjectModel(job, fast, tgt, mdl, rng)
					})
					if got != want {
						t.Errorf("%s %s: µop tally %+v != reference %+v", name, st, got, want)
					}
				}
			}
		})
	}
}

// TestLegacyParityStaticPrune: the static-interval pruning injectors must
// agree on both cores — same prune decisions (the intervals come from a
// schedule trace, identical by the sim-level parity) and same outcomes for
// the runs that do simulate.
func TestLegacyParityStaticPrune(t *testing.T) {
	cfg := gpu.Volta()
	app, err := kernels.ByName("PathFinder")
	if err != nil {
		t.Fatal(err)
	}
	job := app.Build()
	static, err := TraceStatic(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow.Legacy = true
	tgt := Target{Structure: gpu.RF}
	for seed := int64(0); seed < 25; seed++ {
		want, wantPruned := InjectStatic(job, slow, static, tgt, rand.New(rand.NewSource(seed)))
		got, gotPruned := InjectStatic(job, fast, static, tgt, rand.New(rand.NewSource(seed)))
		if got != want || gotPruned != wantPruned {
			t.Fatalf("seed %d: µop %+v/%v != reference %+v/%v", seed, got, gotPruned, want, wantPruned)
		}
	}
}

// TestLegacyParityAdaptive: the sequential early-stopping engine must make
// the same stop decisions and produce the same tally on both cores — batch
// tallies feed the Wilson-score margin, so a single diverging outcome would
// change where the campaign stops.
func TestLegacyParityAdaptive(t *testing.T) {
	cfg := gpu.Volta()
	app, err := kernels.ByName("VA")
	if err != nil {
		t.Fatal(err)
	}
	job := app.Build()
	fast, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow.Legacy = true
	tgt := Target{Structure: gpu.RF}
	opts := campaign.Options{Runs: 120, Seed: 5}
	pol := adaptive.Policy{Margin: 0.25, Batch: 20}
	want := adaptive.Run(opts, pol, func(run int, rng *rand.Rand) faults.Result {
		return Inject(job, slow, tgt, rng)
	})
	got := adaptive.Run(opts, pol, func(run int, rng *rand.Rand) faults.Result {
		return Inject(job, fast, tgt, rng)
	})
	if got != want {
		t.Fatalf("adaptive result diverges:\nµop       %+v\nreference %+v", got, want)
	}
}
