// Fault-model tests: every model family must run end-to-end, checkpointed
// fork-and-join must stay bit-identical to brute force under every model,
// the converge guard for persistent models must be provably load-bearing
// (a deliberately unguarded injector mis-classifies runs), and the campaign
// algebra above the injector — adaptive stopping, stratified allocation,
// liveness/static pruning — must be model-agnostic.
package microfi

import (
	"math/rand"
	"testing"

	"gpurel/internal/ace"
	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/device"
	"gpurel/internal/faultmodel"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
)

// storageModels are the model instances compared on storage arrays;
// controlModels the ones for SCHED/STACK/BARRIER sites.
func storageModels() map[string]faultmodel.Model {
	return map[string]faultmodel.Model{
		"transient":    faultmodel.Transient{Width: 1},
		"transient:w2": faultmodel.Transient{Width: 2},
		"stuck0":       faultmodel.StuckAt{V: 0},
		"stuck1":       faultmodel.StuckAt{V: 1},
		"mbu:w2:l2":    faultmodel.SpatialMBU{Width: 2, Lines: 2},
	}
}

func controlModels() map[string]faultmodel.Model {
	return map[string]faultmodel.Model{
		"control":        faultmodel.ControlFault{},
		"control:stuck0": faultmodel.ControlFault{Stuck: faultmodel.Ptr(0)},
		"control:stuck1": faultmodel.ControlFault{Stuck: faultmodel.Ptr(1)},
	}
}

// TestModelCheckpointEquivalence is the per-model acceptance property: for
// every fault model, a campaign against a checkpointed golden run (fork
// resumes, convergence joins where sound, machine pooling) must tally
// bit-identically to the same campaign against a brute-force golden. VA
// covers the storage arrays; LUD — which has real barriers and divergence —
// covers the control-state sites.
func TestModelCheckpointEquivalence(t *testing.T) {
	cfg := gpu.Volta()
	type caseSet struct {
		app        string
		structures []gpu.Structure
		models     map[string]faultmodel.Model
	}
	cases := []caseSet{
		{"VA", gpu.Structures[:], storageModels()},
		{"LUD", gpu.ControlStructures[:], controlModels()},
	}
	for _, cs := range cases {
		cs := cs
		t.Run(cs.app, func(t *testing.T) {
			app, err := kernels.ByName(cs.app)
			if err != nil {
				t.Fatal(err)
			}
			job := app.Build()
			brute, err := Golden(job, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ck, err := GoldenCheckpointed(job, cfg, ckSpecFor(brute, true))
			if err != nil {
				t.Fatal(err)
			}
			for name, mdl := range cs.models {
				before := ck.CheckpointCounts()
				for _, st := range cs.structures {
					tgt := Target{Structure: st}
					for seed := int64(1); seed <= 3; seed++ {
						opts := campaign.Options{Runs: 2, Seed: seed}
						want := campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
							return InjectModel(job, brute, tgt, mdl, rng)
						})
						got := campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
							return InjectModel(job, ck, tgt, mdl, rng)
						})
						if got != want {
							t.Errorf("%s %s seed %d: checkpointed tally %+v != brute-force %+v",
								name, st, seed, got, want)
						}
					}
				}
				delta := ck.CheckpointCounts()
				delta.ForkResumes -= before.ForkResumes
				delta.ConvergeHits -= before.ConvergeHits
				delta.ConvergeDisabled -= before.ConvergeDisabled
				if mdl.Persistent() {
					if delta.ConvergeHits != 0 {
						t.Errorf("%s: persistent model recorded %d converge joins", name, delta.ConvergeHits)
					}
					if delta.ConvergeDisabled == 0 {
						t.Errorf("%s: persistent model never tripped the converge guard", name)
					}
				} else if delta.ConvergeDisabled != 0 {
					t.Errorf("%s: one-shot model tripped the converge guard %d times", name, delta.ConvergeDisabled)
				}
			}
		})
	}
}

// misjoinInject is injectRunModel with the converge guard deliberately
// removed: it arms convergence probing even for persistent models — the
// exact bug the guard exists to prevent. Kept test-only as the oracle that
// proves the guard is load-bearing.
func misjoinInject(job *device.Job, g *GoldenRun, tgt Target, mdl faultmodel.Model, rng *rand.Rand) (faults.Result, bool) {
	cycle, r, done := tgt.preflightModel(g, mdl, rng)
	if done {
		return r, false
	}
	hit := false
	var applier faultmodel.Applier
	opts := sim.Options{
		MaxCycles: g.Res.Cycles * int64(g.Cfg.TimeoutFactor),
		AtCycle:   cycle,
		OnCycle: func(m *sim.Machine) {
			applier, hit = mdl.Arm(m, tgt.Structure, rng)
		},
		EachCycle: func(m *sim.Machine) {
			if applier != nil {
				applier(m)
			}
		},
	}
	if s := g.Snaps.Before(cycle); s != nil {
		opts.Resume = s
	}
	opts.Converge = g.Snaps // the bug: joins against fault-free state while armed
	opts.Pool = g.pool
	res := sim.Run(job, g.Cfg, opts)
	if res.Converged {
		return Classify(g, g.Res, hit), true
	}
	return Classify(g, res, hit), false
}

// TestConvergeGuardCatchesMisjoins is the regression test for the guard:
// with a permanent stuck-at fault, an unguarded injector joins back to
// golden whenever the forced bit happens to match fault-free state at a
// checkpoint — and for at least one seed that join silently flips the
// classification. The guarded path must stay bit-identical to brute force
// on those same seeds. If the guard were removed, the equivalence
// assertions here (and TestModelCheckpointEquivalence) would fail exactly
// the way the oracle demonstrates.
func TestConvergeGuardCatchesMisjoins(t *testing.T) {
	cfg := gpu.Volta()
	app, err := kernels.ByName("VA")
	if err != nil {
		t.Fatal(err)
	}
	job := app.Build()
	brute, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := GoldenCheckpointed(job, cfg, ckSpecFor(brute, true))
	if err != nil {
		t.Fatal(err)
	}
	mdl := faultmodel.StuckAt{V: 0}
	tgt := Target{Structure: gpu.RF}

	misjoined, diverged := 0, 0
	const seeds = 400
	for seed := int64(0); seed < seeds; seed++ {
		want := InjectModel(job, brute, tgt, mdl, rand.New(rand.NewSource(seed)))
		got := InjectModel(job, ck, tgt, mdl, rand.New(rand.NewSource(seed)))
		if got != want {
			t.Fatalf("seed %d: guarded checkpointed result %+v != brute-force %+v", seed, got, want)
		}
		buggy, joined := misjoinInject(job, ck, tgt, mdl, rand.New(rand.NewSource(seed)))
		if joined {
			misjoined++
			if buggy.Outcome != want.Outcome {
				diverged++
			}
		}
		if diverged > 0 && seed >= 50 {
			break // the oracle has made its point; keep the test fast
		}
	}
	if misjoined == 0 {
		t.Fatal("oracle never joined: the mis-join scenario the guard defends against did not occur")
	}
	if diverged == 0 {
		t.Errorf("unguarded joins never changed a classification in %d seeds; the guard test lost its teeth", seeds)
	}
	t.Logf("unguarded injector: %d silent joins, %d misclassifications", misjoined, diverged)
}

// TestModelAgnosticCampaignAlgebra: the acceleration layers above the
// injector must not care which model runs underneath. For each model:
// adaptive early-stopping tallies a bit-identical prefix of brute force,
// stratified allocation keeps every stratum a prefix of its own run space,
// and the liveness/static pruners fall through to exact unpruned injection
// for every non-transient family (pruning is only sound for one-shot
// single-register faults).
func TestModelAgnosticCampaignAlgebra(t *testing.T) {
	cfg := gpu.Volta()
	app, err := kernels.ByName("VA")
	if err != nil {
		t.Fatal(err)
	}
	job := app.Build()
	g, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := ace.TraceRF(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	static, err := TraceStatic(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt := Target{Structure: gpu.RF}

	for name, mdl := range storageModels() {
		mdl := mdl
		exp := func(run int, rng *rand.Rand) faults.Result {
			return InjectModel(job, g, tgt, mdl, rng)
		}

		// Adaptive early stopping = a batch-boundary prefix of brute force.
		opts := campaign.Options{Runs: 40, Seed: 11}
		res := adaptive.Run(opts, adaptive.Policy{Margin: 0.45, Batch: 10}, exp)
		if res.Tally.N >= opts.Runs && res.Saved > 0 {
			t.Errorf("%s: inconsistent adaptive result %+v", name, res)
		}
		if want := campaign.RunRange(opts, 0, res.Tally.N, exp); res.Tally != want {
			t.Errorf("%s: adaptive tally %+v != brute-force prefix %+v", name, res.Tally, want)
		}

		// Stratified allocation: each stratum stays a prefix of its own
		// deterministic run space.
		strata := []adaptive.Stratum{}
		for _, st := range []gpu.Structure{gpu.RF, gpu.SMEM} {
			st := st
			stTgt := Target{Structure: st}
			strata = append(strata, adaptive.Stratum{
				Name:   st.String(),
				Weight: float64(cfg.StructBits(st)),
				Opts:   campaign.Options{Runs: 20, Seed: 7},
				Fn: func(run int, rng *rand.Rand) faults.Result {
					return InjectModel(job, g, stTgt, mdl, rng)
				},
			})
		}
		for i, sr := range adaptive.Stratified(strata, adaptive.StratifiedPolicy{
			Policy: adaptive.Policy{Margin: 0.4, Batch: 5}, Pilot: 5, Budget: 30,
		}) {
			if want := campaign.RunRange(strata[i].Opts, 0, sr.Tally.N, strata[i].Fn); sr.Tally != want {
				t.Errorf("%s stratum %s: tally %+v != prefix %+v", name, sr.Name, sr.Tally, want)
			}
		}

		// Pruning: transient models prune bit-identically (covered by the
		// pre-existing microfi tests); every other family must fall through
		// to the exact unpruned experiment with pruned=false.
		if _, transient := mdl.(faultmodel.Transient); transient {
			continue
		}
		for seed := int64(0); seed < 25; seed++ {
			want := InjectModel(job, g, tgt, mdl, rand.New(rand.NewSource(seed)))
			got, pruned := InjectPrunedModel(job, g, lv, tgt, mdl, rand.New(rand.NewSource(seed)))
			if pruned || got != want {
				t.Fatalf("%s seed %d: liveness pruner altered the experiment: %+v/%v != %+v",
					name, seed, got, pruned, want)
			}
			got, pruned = InjectStaticModel(job, g, static, tgt, mdl, rand.New(rand.NewSource(seed)))
			if pruned || got != want {
				t.Fatalf("%s seed %d: static pruner altered the experiment: %+v/%v != %+v",
					name, seed, got, pruned, want)
			}
		}
	}
}

// TestControlFaultsEndToEnd: every control-state site on every app yields a
// classifiable outcome and a deterministic campaign — same seed, same tally.
func TestControlFaultsEndToEnd(t *testing.T) {
	cfg := gpu.Volta()
	for _, appName := range []string{"VA", "LUD"} {
		app, err := kernels.ByName(appName)
		if err != nil {
			t.Fatal(err)
		}
		job := app.Build()
		g, err := Golden(job, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for name, mdl := range controlModels() {
			for _, st := range gpu.ControlStructures {
				tgt := Target{Structure: st}
				opts := campaign.Options{Runs: 6, Seed: 5}
				run := func() campaign.Tally {
					return campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
						return InjectModel(job, g, tgt, mdl, rng)
					})
				}
				a, b := run(), run()
				if a != b {
					t.Errorf("%s %s %s: campaign not deterministic: %+v != %+v", appName, name, st, a, b)
				}
				if a.N != opts.Runs {
					t.Errorf("%s %s %s: tally n=%d, want %d", appName, name, st, a.N, opts.Runs)
				}
			}
		}
	}
}
