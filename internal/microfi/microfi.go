// Package microfi is the gpuFI-4 analogue: microarchitecture-level
// statistical fault injection into the simulator's storage arrays (register
// files, shared memory, L1 data/texture caches, L2 cache) and control state
// (warp-scheduler entries, divergence stacks, barrier latches). Each
// experiment plants one fault — by default a transient single-bit flip, or
// any internal/faultmodel family — at one uniformly chosen cycle of the
// target kernel's execution window and classifies the run against the
// golden output (§II-B of the paper).
package microfi

import (
	"math/rand"
	"sync/atomic"

	"gpurel/internal/ace"
	"gpurel/internal/device"
	"gpurel/internal/faultmodel"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/sim"
)

// GoldenRun caches the fault-free simulation of a job.
type GoldenRun struct {
	Res *sim.Result
	Cfg gpu.Config

	// Snaps holds the golden run's machine snapshots when built with
	// GoldenCheckpointed (nil otherwise); Ckpt is the spec it was built
	// with. Read-only once the golden run completes.
	Snaps *sim.SnapshotSet
	Ckpt  CheckpointSpec

	// Legacy forces every faulty run spawned from this golden run onto the
	// reference interpreter with full-copy snapshot restores. Differential
	// tests and benchmarks flip it to compare the fast core against the
	// reference implementation; must be set before injections start.
	Legacy bool

	pool *sim.RunPool

	// Fork/converge tallies, updated atomically by concurrent injections.
	forkResumes, forkCyclesSaved      atomic.Int64
	convergeHits, convergeCyclesSaved atomic.Int64
	convergeDisabled                  atomic.Int64
}

// Golden runs the job fault-free. The run gets a generous cycle budget
// derived from the job's schedule-step budget so a pathological job (e.g. a
// kernel that spins forever) errors out instead of hanging: faulty runs are
// bounded by TimeoutFactor × golden cycles, but the golden run itself has no
// reference to bound against.
func Golden(job *device.Job, cfg gpu.Config) (*GoldenRun, error) {
	res := sim.Run(job, cfg, sim.Options{MaxCycles: goldenCycleBudget(job)})
	if err := vetGolden(res); err != nil {
		return nil, err
	}
	return &GoldenRun{Res: res, Cfg: cfg}, nil
}

// Target selects what one injection experiment hits.
type Target struct {
	Structure gpu.Structure
	// Kernel restricts the injection cycle to that kernel's execution
	// windows ("" = the whole application).
	Kernel string
	// IncludeVote additionally includes the TMR voting kernel's windows —
	// the vote is part of the hardened kernel's workflow (Fig. 6 step 3).
	IncludeVote bool
	// Burst widens the flip to an adjacent multi-bit upset (0/1 = single).
	Burst int
}

// VoteKernelName is the kernel name the TMR transform gives vote launches.
const VoteKernelName = "vote"

// spans returns the launch spans matching the target kernel.
func (t Target) spans(g *GoldenRun) []sim.LaunchSpan {
	var out []sim.LaunchSpan
	for _, s := range g.Res.Spans {
		if t.Kernel == "" || s.Kernel == t.Kernel || (t.IncludeVote && s.Kernel == VoteKernelName) {
			out = append(out, s)
		}
	}
	return out
}

// Windows returns the total cycle count of the target windows.
func (t Target) Windows(g *GoldenRun) int64 {
	var total int64
	for _, s := range t.spans(g) {
		total += s.End - s.Start
	}
	return total
}

// DF returns the derating factor for the target structure, cycle-weighted
// across the target kernel's launches (§II-B). Caches have DF = 1.
func (t Target) DF(g *GoldenRun) float64 {
	switch t.Structure {
	case gpu.RF, gpu.SMEM:
	default:
		return 1
	}
	var num, den float64
	for _, s := range t.spans(g) {
		c := float64(s.End - s.Start)
		den += c
		if t.Structure == gpu.RF {
			num += c * s.RFDeratingFactor(g.Cfg)
		} else {
			num += c * s.SmemDeratingFactor(g.Cfg)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// pickCycle draws a uniform cycle within the target windows.
func (t Target) pickCycle(g *GoldenRun, rng *rand.Rand) (int64, bool) {
	total := t.Windows(g)
	if total <= 0 {
		return 0, false
	}
	k := rng.Int63n(total)
	for _, s := range t.spans(g) {
		n := s.End - s.Start
		if k < n {
			return s.Start + k + 1, true // cycles are 1-based in the runner
		}
		k -= n
	}
	return 0, false
}

// Inject performs one transient single-bit (or Burst-wide) injection
// experiment and classifies the outcome. It is exactly InjectModel with the
// legacy transient model.
func Inject(job *device.Job, g *GoldenRun, t Target, rng *rand.Rand) faults.Result {
	return InjectModel(job, g, t, faultmodel.Transient{Width: t.Burst}, rng)
}

// InjectModel performs one injection experiment under an arbitrary fault
// model and classifies the outcome. The rand stream is consumed in the same
// order for every model (cycle draw, then the model's site draws), and for
// the transient model the experiment is bit-identical to the historical
// Inject for every (seed, run) pair.
func InjectModel(job *device.Job, g *GoldenRun, t Target, mdl faultmodel.Model, rng *rand.Rand) faults.Result {
	cycle, r, done := t.preflightModel(g, mdl, rng)
	if done {
		return r
	}
	return injectRunModel(job, g, t, cycle, mdl, rng)
}

// preflight runs the simulation-free prefix shared by Inject and
// InjectPruned: cycle selection within the target windows and the ECC
// screen. done=true means the experiment classifies without a faulty run.
func (t Target) preflight(g *GoldenRun, rng *rand.Rand) (cycle int64, width int, r faults.Result, done bool) {
	cycle, ok := t.pickCycle(g, rng)
	if !ok {
		// kernel never ran (e.g. zero shared memory usage): nothing to hit
		return 0, 0, faults.Result{Outcome: faults.Masked, Detail: "empty injection window"}, true
	}
	width = t.Burst
	if width < 1 {
		width = 1
	}
	// SEC-DED ECC on the target structure: single-bit upsets are corrected,
	// double-bit upsets are detected but uncorrectable. Wider bursts escape
	// the code and strike the array below.
	if g.Cfg.ECC[t.Structure] {
		switch width {
		case 1:
			return 0, 0, faults.Result{Outcome: faults.Masked, Detail: "corrected by ECC"}, true
		case 2:
			return 0, 0, faults.Result{Outcome: faults.DUE, Detail: "detected uncorrectable (ECC)"}, true
		}
	}
	return cycle, width, faults.Result{}, false
}

// preflightModel is preflight generalized over fault models: the ECC screen
// keys on the model's per-word footprint, and control structures (which sit
// outside the ECC-indexed storage arrays and carry no code word) bypass it.
// For the transient model it is bit-identical to preflight.
func (t Target) preflightModel(g *GoldenRun, mdl faultmodel.Model, rng *rand.Rand) (cycle int64, r faults.Result, done bool) {
	cycle, ok := t.pickCycle(g, rng)
	if !ok {
		return 0, faults.Result{Outcome: faults.Masked, Detail: "empty injection window"}, true
	}
	if wb := mdl.WordBits(); wb > 0 && !t.Structure.IsControl() && g.Cfg.ECC[t.Structure] {
		switch wb {
		case 1:
			// SEC-DED corrects a single defective bit per word on every read,
			// whether the upset is transient or a permanent stuck cell.
			return 0, faults.Result{Outcome: faults.Masked, Detail: "corrected by ECC"}, true
		case 2:
			return 0, faults.Result{Outcome: faults.DUE, Detail: "detected uncorrectable (ECC)"}, true
		}
	}
	return cycle, faults.Result{}, false
}

// injectRunModel executes the faulty simulation under the model and
// classifies it against golden. One-shot models corrupt state in the
// AtCycle hook exactly like injectRun; persistent models additionally
// re-assert their applier at the top of every subsequent cycle, and
// convergence joins are withheld (see accelerateModel).
func injectRunModel(job *device.Job, g *GoldenRun, t Target, cycle int64, mdl faultmodel.Model, rng *rand.Rand) faults.Result {
	hit := false
	var applier faultmodel.Applier
	opts := sim.Options{
		MaxCycles: g.Res.Cycles * int64(g.Cfg.TimeoutFactor),
		AtCycle:   cycle,
		Legacy:    g.Legacy,
		OnCycle: func(m *sim.Machine) {
			applier, hit = mdl.Arm(m, t.Structure, rng)
		},
	}
	if mdl.Persistent() {
		opts.EachCycle = func(m *sim.Machine) {
			if applier != nil {
				applier(m)
			}
		}
	}
	g.accelerateModel(&opts, cycle, mdl.Persistent())
	res := sim.Run(job, g.Cfg, opts)
	if res.Converged {
		return g.classifyConverged(res, hit)
	}
	return Classify(g, res, hit)
}

// injectRun executes the faulty simulation with the given corruption hook
// and classifies it against golden. On a checkpointed golden run the faulty
// simulation forks from the nearest snapshot below the injection cycle and
// may join back to golden early — both bit-identical to simulating from
// cycle 0 (see checkpoint.go).
func injectRun(job *device.Job, g *GoldenRun, cycle int64, corrupt func(*sim.Machine) bool) faults.Result {
	hit := false
	opts := sim.Options{
		MaxCycles: g.Res.Cycles * int64(g.Cfg.TimeoutFactor),
		AtCycle:   cycle,
		Legacy:    g.Legacy,
		OnCycle: func(m *sim.Machine) {
			hit = corrupt(m)
		},
	}
	g.accelerate(&opts, cycle)
	res := sim.Run(job, g.Cfg, opts)
	if res.Converged {
		return g.classifyConverged(res, hit)
	}
	return Classify(g, res, hit)
}

// InjectPruned performs the same experiment as Inject — bit-identically for
// any (seed, run) pair — but classifies provably-dead register-file sites as
// Masked without simulating them, using the liveness map of the golden run.
// The second return value reports whether the run was pruned (classified
// analytically). Structures other than RF, and ECC-screened or empty-window
// runs, fall through to the exact Inject behaviour with pruned=false.
//
// The equivalence argument: the faulty run is deterministic and identical to
// golden up to the injection cycle, so the allocated-block list the injector
// would enumerate at that cycle is exactly the liveness map's reconstruction,
// and the RNG draws (cycle, entry, bit) replay in the same order with the
// same bounds. A flip confined to one register whose stored value is never
// read again before overwrite/deallocation cannot change any future
// architectural event — output and cycle count match golden, which is
// precisely the Masked/not-control-affected classification the brute-force
// run would produce.
func InjectPruned(job *device.Job, g *GoldenRun, lv *ace.Liveness, t Target, rng *rand.Rand) (faults.Result, bool) {
	if t.Structure != gpu.RF || lv == nil {
		return Inject(job, g, t, rng), false
	}
	cycle, width, r, done := t.preflight(g, rng)
	if done {
		return r, false
	}
	// Replay the transient model's site selection from the recorded
	// allocation timeline: SMs in index order, blocks in CTA placement order
	// (the faultmodel.pickAllocated enumeration).
	var (
		scratch [8]sim.RFBlock
		smOf    []int
		total   int
	)
	blocks := scratch[:0]
	for sm := 0; sm < lv.NumSMs(); sm++ {
		n := len(blocks)
		blocks = lv.RFBlocksAt(sm, cycle, blocks)
		for range blocks[n:] {
			smOf = append(smOf, sm)
		}
	}
	for _, b := range blocks {
		total += b.Size
	}
	if total == 0 {
		// The brute-force run would simulate, find nothing allocated, and
		// classify the unperturbed (hence golden-identical) run as Masked.
		return faults.Result{Outcome: faults.Masked, Detail: "no allocated entry at injection cycle"}, true
	}
	k := rng.Intn(total)
	bit := uint(rng.Intn(32))
	for i, b := range blocks {
		if k < b.Size {
			sm, phys := smOf[i], b.Base+k
			if !lv.Live(sm, phys, cycle) {
				// Provably dead: the corrupted value is never consumed.
				return faults.Result{Outcome: faults.Masked}, true
			}
			return injectRun(job, g, cycle, func(m *sim.Machine) bool {
				for w := 0; w < width; w++ {
					m.SMs[sm].RF[phys] ^= 1 << ((bit + uint(w)) % 32)
				}
				m.SMs[sm].MarkRF(phys)
				return true
			}), false
		}
		k -= b.Size
	}
	// Unreachable: k < total = Σ sizes.
	panic("microfi: site selection overran the allocation timeline")
}

// Classify compares a (possibly faulty) run against the golden run.
func Classify(g *GoldenRun, res *sim.Result, injected bool) faults.Result {
	switch {
	case res.TimedOut:
		return faults.Result{Outcome: faults.Timeout}
	case res.Err != nil:
		return faults.Result{Outcome: faults.DUE, Detail: res.Err.Error()}
	case res.DUEFlag:
		return faults.Result{Outcome: faults.DUE, Detail: "application-detected (TMR vote disagreement)"}
	case !bytesEqual(res.Output, g.Res.Output):
		return faults.Result{Outcome: faults.SDC}
	default:
		r := faults.Result{Outcome: faults.Masked, CtrlAffected: res.Cycles != g.Res.Cycles}
		if !injected {
			r.Detail = "no allocated entry at injection cycle"
		}
		return r
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// InjectPrunedModel is InjectPruned generalized over fault models. Liveness
// pruning's equivalence argument — a flipped value never read again cannot
// change any future architectural event — holds only for one-shot faults
// confined to the drawn register, so every family except the plain
// transient takes the exact unpruned InjectModel path with pruned=false.
// The transient model delegates to InjectPruned (which replays its draws
// against the liveness timeline) and remains bit-identical to brute force.
func InjectPrunedModel(job *device.Job, g *GoldenRun, lv *ace.Liveness, t Target, mdl faultmodel.Model, rng *rand.Rand) (faults.Result, bool) {
	if tr, ok := mdl.(faultmodel.Transient); ok {
		t.Burst = tr.Width
		return InjectPruned(job, g, lv, t, rng)
	}
	return InjectModel(job, g, t, mdl, rng), false
}

// InjectStaticModel is InjectStatic generalized over fault models, with the
// same restriction as InjectPrunedModel: static dead-interval pruning is
// only sound for one-shot single-site faults, so non-transient models run
// unpruned.
func InjectStaticModel(job *device.Job, g *GoldenRun, si *StaticIntervals, t Target, mdl faultmodel.Model, rng *rand.Rand) (faults.Result, bool) {
	if tr, ok := mdl.(faultmodel.Transient); ok {
		t.Burst = tr.Width
		return InjectStatic(job, g, si, t, rng)
	}
	return InjectModel(job, g, t, mdl, rng), false
}
