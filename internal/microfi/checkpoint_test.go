package microfi

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"gpurel/internal/campaign"
	"gpurel/internal/device"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/harden"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
)

// ckSpecFor derives an explicit stride from a known golden run so the tests
// skip the AutoStride probe run.
func ckSpecFor(g *GoldenRun, converge bool) CheckpointSpec {
	return CheckpointSpec{Stride: g.Res.Cycles/6 + 1, Converge: converge}
}

// TestCheckpointEquivalenceAllApps is the load-bearing property behind
// fork-and-join: for every application, every hardware structure and several
// campaign seeds, a campaign run against a checkpointed golden (forked
// resumes + convergence joins) must tally bit-identically to the same
// campaign against a brute-force golden.
func TestCheckpointEquivalenceAllApps(t *testing.T) {
	cfg := gpu.Volta()
	const runsPerPoint = 2
	var total CheckpointCounts
	for _, app := range kernels.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			job := app.Build()
			brute, err := Golden(job, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ck, err := GoldenCheckpointed(job, cfg, ckSpecFor(brute, true))
			if err != nil {
				t.Fatal(err)
			}
			if ck.Res.Cycles != brute.Res.Cycles || !bytes.Equal(ck.Res.Output, brute.Res.Output) {
				t.Fatal("checkpointing perturbed the golden run itself")
			}
			for _, st := range gpu.Structures {
				tgt := Target{Structure: st}
				for seed := int64(1); seed <= 3; seed++ {
					opts := campaign.Options{Runs: runsPerPoint, Seed: seed}
					want := campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
						return Inject(job, brute, tgt, rng)
					})
					got := campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
						return Inject(job, ck, tgt, rng)
					})
					if got != want {
						t.Errorf("%s seed %d: checkpointed tally %+v != brute-force %+v",
							st, seed, got, want)
					}
				}
			}
			total.Add(ck.CheckpointCounts())
		})
	}
	t.Logf("aggregate: %+v", total)
	if total.ForkResumes == 0 {
		t.Error("no run across any app resumed from a checkpoint")
	}
	if total.ConvergeHits == 0 {
		t.Error("no run across any app converged back to golden")
	}
	if total.Snapshots == 0 || total.SnapshotBytes == 0 {
		t.Error("snapshot inventory empty")
	}
}

// TestCheckpointEquivalenceTMR covers the hardened variant (replicated
// launches + voter) and the converge-off configuration on the same campaign.
func TestCheckpointEquivalenceTMR(t *testing.T) {
	cfg := gpu.Volta()
	app, err := kernels.ByName("VA")
	if err != nil {
		t.Fatal(err)
	}
	job := harden.TMR(app.Build())
	brute, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt := Target{Structure: gpu.RF, IncludeVote: true}
	for _, converge := range []bool{false, true} {
		ck, err := GoldenCheckpointed(job, cfg, ckSpecFor(brute, converge))
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			opts := campaign.Options{Runs: 3, Seed: seed}
			want := campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
				return Inject(job, brute, tgt, rng)
			})
			got := campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
				return Inject(job, ck, tgt, rng)
			})
			if got != want {
				t.Errorf("converge=%v seed %d: TMR tally %+v != brute-force %+v",
					converge, seed, got, want)
			}
		}
		if converge && ck.CheckpointCounts().ConvergeHits == 0 {
			t.Log("no TMR run converged at this sample size (acceptable)")
		}
		if !converge && ck.CheckpointCounts().ConvergeHits != 0 {
			t.Error("converge=false recorded convergence hits")
		}
	}
}

// TestCheckpointStaticEquivalence: the static-pruning injector goes through
// the same accelerate/converge path; pin it to brute-force InjectStatic.
func TestCheckpointStaticEquivalence(t *testing.T) {
	cfg := gpu.Volta()
	app, err := kernels.ByName("PathFinder")
	if err != nil {
		t.Fatal(err)
	}
	job := app.Build()
	static, err := TraceStatic(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := GoldenCheckpointed(job, cfg, ckSpecFor(brute, true))
	if err != nil {
		t.Fatal(err)
	}
	tgt := Target{Structure: gpu.RF}
	for seed := int64(0); seed < 40; seed++ {
		want, wantPruned := InjectStatic(job, brute, static, tgt, rand.New(rand.NewSource(seed)))
		got, gotPruned := InjectStatic(job, ck, static, tgt, rand.New(rand.NewSource(seed)))
		if got != want || gotPruned != wantPruned {
			t.Fatalf("seed %d: %+v/%v != %+v/%v", seed, got, gotPruned, want, wantPruned)
		}
	}
}

// verifyRoundTrip resumes the fault-free run from each retained snapshot of
// g and requires a bit-identical finish — outputs, cycle count, launch
// spans, per-kernel stats (which carry the DRAM counters).
func verifyRoundTrip(t *testing.T, job *device.Job, cfg gpu.Config, g *GoldenRun) {
	t.Helper()
	if g.Snaps.Len() == 0 {
		t.Fatal("no snapshots captured")
	}
	for i := 0; i < g.Snaps.Len(); i++ {
		s := g.Snaps.Snap(i)
		res := sim.Run(job, cfg, sim.Options{MaxCycles: goldenCycleBudget(job), Resume: s})
		if res.Err != nil || res.TimedOut {
			t.Fatalf("resume from cycle %d failed: %v timeout=%v", s.Cycle(), res.Err, res.TimedOut)
		}
		if res.Cycles != g.Res.Cycles {
			t.Fatalf("resume from cycle %d: %d cycles, want %d", s.Cycle(), res.Cycles, g.Res.Cycles)
		}
		if !bytes.Equal(res.Output, g.Res.Output) {
			t.Fatalf("resume from cycle %d: output differs", s.Cycle())
		}
		if len(res.Spans) != len(g.Res.Spans) {
			t.Fatalf("resume from cycle %d: %d spans, want %d", s.Cycle(), len(res.Spans), len(g.Res.Spans))
		}
		for k := range res.Spans {
			if res.Spans[k] != g.Res.Spans[k] {
				t.Fatalf("resume from cycle %d: span %d diverges", s.Cycle(), k)
			}
		}
		if len(res.PerKernel) != len(g.Res.PerKernel) {
			t.Fatalf("resume from cycle %d: kernel stats missing", s.Cycle())
		}
		for name, ks := range res.PerKernel {
			ref := g.Res.PerKernel[name]
			if ref == nil || *ks != *ref {
				t.Fatalf("resume from cycle %d: kernel %s stats diverge:\n%+v\n%+v",
					s.Cycle(), name, ks, ref)
			}
		}
	}
}

// TestCheckpointRoundTripAllApps: the round-trip property on the default
// grid, for every shipped application.
func TestCheckpointRoundTripAllApps(t *testing.T) {
	cfg := gpu.Volta()
	for _, app := range kernels.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			job := app.Build()
			g, err := GoldenCheckpointed(job, cfg, CheckpointSpec{Stride: AutoStride})
			if err != nil {
				t.Fatal(err)
			}
			verifyRoundTrip(t, job, cfg, g)
		})
	}
}

// TestCheckpointRoundTripEvicted: the round-trip property when a tight
// budget forces stride doubling — survivors of the eviction path are COW
// snapshots whose shared pages went through re-basing, and every one must
// still restore exactly. Every shipped application is covered.
func TestCheckpointRoundTripEvicted(t *testing.T) {
	cfg := gpu.Volta()
	for _, app := range kernels.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			job := app.Build()
			probe, err := Golden(job, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Dense grid, then a budget sized from a probe: room for the
			// first (un-based, full-size) snapshot plus half the COW deltas,
			// so some snapshots always fit but the stride must double at
			// least once to shed the rest.
			dense, err := GoldenCheckpointed(job, cfg, CheckpointSpec{Stride: probe.Res.Cycles/16 + 1})
			if err != nil {
				t.Fatal(err)
			}
			if dense.Snaps.Len() < 4 {
				t.Skipf("golden run too short to force evictions: %d snaps", dense.Snaps.Len())
			}
			full := dense.Snaps.Snap(0).Bytes()
			g, err := GoldenCheckpointed(job, cfg, CheckpointSpec{
				Stride:      probe.Res.Cycles/16 + 1,
				BudgetBytes: full + (dense.Snaps.Bytes()-full)/2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if g.CheckpointCounts().Evictions == 0 {
				t.Fatal("budget forced no evictions; the eviction path is untested")
			}
			verifyRoundTrip(t, job, cfg, g)
		})
	}
}

// TestGoldenCheckpointedDisabled: a zero spec must behave exactly like
// Golden — no snapshots, no pool, no counters.
func TestGoldenCheckpointedDisabled(t *testing.T) {
	job := saxpyJob(256)
	g, err := GoldenCheckpointed(job, gpu.Volta(), CheckpointSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Snaps != nil {
		t.Error("disabled spec captured snapshots")
	}
	if c := g.CheckpointCounts(); c != (CheckpointCounts{}) {
		t.Errorf("disabled spec has counts %+v", c)
	}
	r := Inject(job, g, Target{Structure: gpu.RF, Kernel: "K1"}, rand.New(rand.NewSource(1)))
	if r.Outcome >= faults.NumOutcomes {
		t.Errorf("bad outcome %v", r.Outcome)
	}
}

// TestGoldenCycleBudget: a kernel that spins forever must be caught by the
// schedule-derived cycle budget instead of hanging the golden run.
func TestGoldenCycleBudget(t *testing.T) {
	spin := &isa.Program{
		Name:    "spin",
		NumRegs: 1,
		Code: []isa.Instr{
			{Op: isa.OpBRA, Target: 0, Reconv: 1}, // PT-guarded: branch to self
			{Op: isa.OpEXIT},
		},
	}
	if err := spin.Validate(); err != nil {
		t.Fatal(err)
	}
	job := &device.Job{
		Name: "spin", Mem: device.NewMemory(1 << 16), MaxSteps: 1,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: spin, GridX: 1, GridY: 1, BlockX: 32, BlockY: 1,
		}}},
	}
	if got, want := goldenCycleBudget(job), int64(1)*GoldenCyclesPerStep; got != want {
		t.Fatalf("budget = %d, want %d", got, want)
	}
	if _, err := Golden(job, gpu.Volta()); err == nil {
		t.Fatal("spinning golden run must fail the timeout vet")
	}
	if _, err := GoldenCheckpointed(job, gpu.Volta(), CheckpointSpec{Stride: 1 << 10}); err == nil {
		t.Fatal("spinning checkpointed golden run must fail the timeout vet")
	}
}

// TestCheckpointBudgetWidening: a deliberately tiny budget must widen the
// stride (evicting snapshots) while keeping injection bit-identical.
func TestCheckpointBudgetWidening(t *testing.T) {
	cfg := gpu.Volta()
	job := saxpyJob(256)
	brute, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Size the budget from a probe so exactly a couple of snapshots fit.
	probe, err := GoldenCheckpointed(job, cfg, CheckpointSpec{Stride: brute.Res.Cycles/12 + 1})
	if err != nil {
		t.Fatal(err)
	}
	if probe.Snaps.Len() < 4 {
		t.Skipf("golden run too short: %d snaps", probe.Snaps.Len())
	}
	perSnap := probe.Snaps.Bytes() / int64(probe.Snaps.Len())
	g, err := GoldenCheckpointed(job, cfg, CheckpointSpec{
		Stride:      brute.Res.Cycles/12 + 1,
		BudgetBytes: 2*perSnap + perSnap/2,
		Converge:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := g.CheckpointCounts()
	if c.Evictions == 0 {
		t.Error("tight budget evicted nothing")
	}
	if g.Snaps.Bytes() > 2*perSnap+perSnap/2 {
		t.Errorf("retained %d bytes over budget", g.Snaps.Bytes())
	}
	tgt := Target{Structure: gpu.RF, Kernel: "K1"}
	for seed := int64(0); seed < 30; seed++ {
		want := Inject(job, brute, tgt, rand.New(rand.NewSource(seed)))
		got := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
		if got != want {
			t.Fatalf("seed %d: %+v != %+v", seed, got, want)
		}
	}
}

// TestSnapshotDensityCOW is the copy-on-write acceptance property: under
// the same snapshot memory budget, COW page sharing must retain at least
// 2× the checkpoints the reference core's standalone snapshots can afford.
// The budget is sized from the reference core's own per-snapshot cost so
// the bound tracks machine-state size instead of a hard-coded byte count.
func TestSnapshotDensityCOW(t *testing.T) {
	cfg := gpu.Volta()
	app, err := kernels.ByName("PathFinder")
	if err != nil {
		t.Fatal(err)
	}
	job := app.Build()
	brute, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stride := brute.Res.Cycles/32 + 1
	ref, err := GoldenCheckpointed(job, cfg, CheckpointSpec{Stride: stride, BudgetBytes: -1, Legacy: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Snaps.Len() < 8 {
		t.Skipf("golden run too short for a density comparison: %d snaps", ref.Snaps.Len())
	}
	perSnap := ref.Snaps.Bytes() / int64(ref.Snaps.Len())
	budget := 4 * perSnap
	legacy, err := GoldenCheckpointed(job, cfg, CheckpointSpec{Stride: stride, BudgetBytes: budget, Legacy: true})
	if err != nil {
		t.Fatal(err)
	}
	cow, err := GoldenCheckpointed(job, cfg, CheckpointSpec{Stride: stride, BudgetBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	lc, cc := legacy.CheckpointCounts(), cow.CheckpointCounts()
	t.Logf("budget %.1fMB: reference %d snaps (%.1fMB), COW %d snaps (%.1fMB)",
		float64(budget)/(1<<20), lc.Snapshots, float64(lc.SnapshotBytes)/(1<<20),
		cc.Snapshots, float64(cc.SnapshotBytes)/(1<<20))
	if lc.SnapshotBytes > budget || cc.SnapshotBytes > budget {
		t.Errorf("a snapshot set exceeded its %d-byte budget: reference %d, COW %d",
			budget, lc.SnapshotBytes, cc.SnapshotBytes)
	}
	if lc.Snapshots == 0 {
		t.Fatal("reference core retained no snapshots")
	}
	if cc.Snapshots < 2*lc.Snapshots {
		t.Errorf("COW retained %d snapshots vs reference %d in the same budget, want >= 2×",
			cc.Snapshots, lc.Snapshots)
	}
}

// BenchmarkCheckpoint_Speedup is the checkpointing acceptance benchmark: a
// fixed RF campaign against a checkpointed golden run (fork resumes +
// convergence joins + machine pooling) must finish at least 3× faster than
// the same campaign brute-forced from cycle zero, while tallying
// bit-identically. The floor was 2× before the hot-loop overhaul; the µop
// core shifted more of a brute-force run's cost into simulated cycles that
// forks and joins skip, so checkpointing now buys 4.4–4.8× on an idle
// machine. With GPUREL_BENCH_JSON set, a machine-readable summary is
// written there for the CI artifact.
func BenchmarkCheckpoint_Speedup(b *testing.B) {
	cfg := gpu.Volta()
	app, err := kernels.ByName("SRADv1")
	if err != nil {
		b.Fatal(err)
	}
	job := app.Build()
	const runs = 40
	brute, err := Golden(job, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ck, err := GoldenCheckpointed(job, cfg, CheckpointSpec{Stride: brute.Res.Cycles/24 + 1, Converge: true})
	if err != nil {
		b.Fatal(err)
	}
	tgt := Target{Structure: gpu.RF}
	opts := campaign.Options{Runs: runs, Seed: 7, Workers: 1}

	var bruteTally, ckTally campaign.Tally
	var bruteDur, ckDur time.Duration
	var allocs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		bruteTally = campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
			return Inject(job, brute, tgt, rng)
		})
		t1 := time.Now()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		ckTally = campaign.Run(opts, func(run int, rng *rand.Rand) faults.Result {
			return Inject(job, ck, tgt, rng)
		})
		runtime.ReadMemStats(&ms1)
		ckDur += time.Since(t1)
		bruteDur += t1.Sub(t0)
		allocs += ms1.Mallocs - ms0.Mallocs
	}
	b.StopTimer()

	if ckTally != bruteTally {
		b.Fatalf("checkpointed tally %+v != brute-force %+v", ckTally, bruteTally)
	}
	speedup := float64(bruteDur) / float64(ckDur)
	if speedup < 3 {
		b.Fatalf("checkpointed campaign only %.2f× faster than brute force, want >= 3×", speedup)
	}
	nsPerRun := float64(ckDur.Nanoseconds()) / float64(runs*b.N)
	allocsPerRun := float64(allocs) / float64(runs*b.N)
	b.ReportMetric(speedup, "x-speedup")
	b.ReportMetric(nsPerRun, "ns/run")
	b.ReportMetric(allocsPerRun, "allocs/run")

	if path := os.Getenv("GPUREL_BENCH_JSON"); path != "" {
		c := ck.CheckpointCounts()
		out, err := json.MarshalIndent(map[string]any{
			"benchmark":             "Checkpoint_Speedup",
			"app":                   app.Name,
			"runs":                  runs * b.N,
			"ns_op":                 nsPerRun,
			"brute_ns_op":           float64(bruteDur.Nanoseconds()) / float64(runs*b.N),
			"speedup":               speedup,
			"allocs_op":             allocsPerRun,
			"fork_resumes":          c.ForkResumes,
			"fork_cycles_saved":     c.ForkCyclesSaved,
			"converge_hits":         c.ConvergeHits,
			"converge_cycles_saved": c.ConvergeCyclesSaved,
			"snapshots":             c.Snapshots,
			"snapshot_bytes":        c.SnapshotBytes,
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
