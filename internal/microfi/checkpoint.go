package microfi

import (
	"fmt"

	"gpurel/internal/device"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/sim"
)

// Checkpointed fork-and-join injection (the gpuFI-4 successor technique):
// the golden run captures machine snapshots at a cycle stride, each faulty
// run forks from the nearest snapshot below its injection cycle instead of
// replaying the fault-free prefix, and — when convergence detection is on —
// joins back to golden as soon as its complete machine state matches a
// golden checkpoint, adopting the golden suffix as its outcome. Both paths
// are bit-identical to brute-force Inject for every (seed, run) pair: the
// prefix a fork skips is by construction the golden prefix, and a joined
// run's continuation is the deterministic image of a state equal to
// golden's (see internal/sim/snapshot.go and docs/perf.md).

const (
	// AutoStride, as a CheckpointSpec.Stride, derives the stride from the
	// golden run length so about DefaultSnapshots checkpoints are taken.
	AutoStride = -1
	// DefaultSnapshots is the checkpoint count AutoStride aims for.
	DefaultSnapshots = 24
	// DefaultCheckpointBudget is the snapshot memory budget applied when a
	// spec leaves BudgetBytes zero.
	DefaultCheckpointBudget = 256 << 20
)

// CheckpointSpec configures checkpointed injection for a golden run.
type CheckpointSpec struct {
	// Stride is the snapshot interval in cycles: 0 disables checkpointing,
	// negative (AutoStride) derives an interval targeting DefaultSnapshots
	// checkpoints.
	Stride int64 `json:"stride,omitempty"`
	// BudgetBytes bounds retained snapshot memory; the stride auto-widens
	// (evicting off-grid snapshots) to fit. 0 applies
	// DefaultCheckpointBudget; negative means unlimited.
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// Converge enables early convergence detection on faulty runs.
	Converge bool `json:"converge,omitempty"`
	// Legacy runs the golden capture and every faulty run on the reference
	// (pre-µop) core. Snapshots captured by the reference core do not share
	// pages copy-on-write, so a BudgetBytes limit widens the checkpoint grid
	// to the density the pre-overhaul engine could afford — the honest
	// baseline for differential benchmarks.
	Legacy bool `json:"legacy,omitempty"`
}

// Enabled reports whether the spec turns checkpointing on.
func (c CheckpointSpec) Enabled() bool { return c.Stride != 0 }

// CheckpointCounts reports the work a golden run's checkpoints saved.
type CheckpointCounts struct {
	// ForkResumes counts faulty runs resumed from a checkpoint;
	// ForkCyclesSaved sums the golden-prefix cycles those resumes skipped.
	ForkResumes     int64 `json:"fork_resumes"`
	ForkCyclesSaved int64 `json:"fork_cycles_saved"`
	// ConvergeHits counts faulty runs that joined back to golden;
	// ConvergeCyclesSaved sums the suffix cycles not simulated.
	ConvergeHits        int64 `json:"converge_hits"`
	ConvergeCyclesSaved int64 `json:"converge_cycles_saved"`
	// ConvergeDisabled counts faulty runs where the spec requested converge
	// joins but the armed fault model is persistent, so the join probe was
	// withheld: state equality with a fault-free checkpoint does not imply
	// an identical continuation while the defect keeps acting.
	ConvergeDisabled int64 `json:"converge_disabled,omitempty"`
	// Snapshot inventory: retained count and bytes, and snapshots evicted
	// by budget-driven stride widening.
	Snapshots     int64 `json:"snapshots"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	Evictions     int64 `json:"evictions"`
}

// Add accumulates o into c (aggregation across apps/goldens).
func (c *CheckpointCounts) Add(o CheckpointCounts) {
	c.ForkResumes += o.ForkResumes
	c.ForkCyclesSaved += o.ForkCyclesSaved
	c.ConvergeHits += o.ConvergeHits
	c.ConvergeCyclesSaved += o.ConvergeCyclesSaved
	c.ConvergeDisabled += o.ConvergeDisabled
	c.Snapshots += o.Snapshots
	c.SnapshotBytes += o.SnapshotBytes
	c.Evictions += o.Evictions
}

// GoldenCheckpointed runs the job fault-free like Golden, additionally
// capturing machine snapshots per spec so subsequent Inject* calls on the
// returned GoldenRun fork from checkpoints (and, when spec.Converge is set,
// join back to golden early). With a disabled spec it is exactly Golden.
func GoldenCheckpointed(job *device.Job, cfg gpu.Config, spec CheckpointSpec) (*GoldenRun, error) {
	if !spec.Enabled() {
		return Golden(job, cfg)
	}
	stride := spec.Stride
	if stride < 0 {
		// Probe run to size the stride; deterministic, so the checkpointed
		// run below replays it exactly.
		probe, err := Golden(job, cfg)
		if err != nil {
			return nil, err
		}
		stride = probe.Res.Cycles / DefaultSnapshots
		if stride < 1 {
			stride = 1
		}
	}
	budget := spec.BudgetBytes
	if budget == 0 {
		budget = DefaultCheckpointBudget
	} else if budget < 0 {
		budget = 0 // sim.SnapshotSet: <=0 = unlimited
	}
	snaps := sim.NewSnapshotSet(stride, budget)
	res := sim.Run(job, cfg, sim.Options{MaxCycles: goldenCycleBudget(job), Checkpoint: snaps, Legacy: spec.Legacy})
	if err := vetGolden(res); err != nil {
		return nil, err
	}
	return &GoldenRun{Res: res, Cfg: cfg, Snaps: snaps, Ckpt: spec, Legacy: spec.Legacy, pool: sim.NewRunPool()}, nil
}

// vetGolden rejects a reference run that is not usable as golden.
func vetGolden(res *sim.Result) error {
	switch {
	case res.Err != nil:
		return fmt.Errorf("golden run failed: %w", res.Err)
	case res.TimedOut:
		return fmt.Errorf("golden run timed out")
	case res.DUEFlag:
		return fmt.Errorf("golden run raised the DUE flag")
	}
	return nil
}

// GoldenCyclesPerStep is the golden run's cycle allowance per schedule step.
// The largest shipped app finishes a step in well under 2^16 cycles; 2^20
// leaves orders-of-magnitude headroom while still bounding a pathological
// job (e.g. a kernel spinning forever) that would otherwise hang the golden
// run, which has no TimeoutFactor budget to fall back on.
const GoldenCyclesPerStep = 1 << 20

// goldenCycleBudget bounds the fault-free run from the job's schedule-step
// budget.
func goldenCycleBudget(job *device.Job) int64 {
	return int64(job.MaxScheduleSteps()) * GoldenCyclesPerStep
}

// accelerate arms opts with the checkpoint machinery for a faulty run that
// injects at the given cycle: resume from the latest snapshot strictly below
// the injection cycle (the hook fires at the top of a cycle, snapshots
// capture its end), converge probing when enabled, and machine-state reuse
// through the run pool. No-op on a plain Golden run.
func (g *GoldenRun) accelerate(opts *sim.Options, cycle int64) {
	g.accelerateModel(opts, cycle, false)
}

// accelerateModel is accelerate with the armed model's persistence made
// explicit. Fork-resume stays sound for persistent faults (the skipped
// prefix is fault-free in both runs), but convergence joins are not: the
// probe compares post-fault state to fault-free golden checkpoints, and
// while the fault remains armed an exact state match does not imply an
// identical continuation — the defect corrupts the joined suffix too. The
// join probe is therefore withheld for persistent models even when the spec
// requests it, and each such auto-disable is counted in
// CheckpointCounts.ConvergeDisabled so operators can see the spec was
// overridden and why throughput dropped.
func (g *GoldenRun) accelerateModel(opts *sim.Options, cycle int64, persistent bool) {
	if g.Snaps == nil {
		return
	}
	if s := g.Snaps.Before(cycle); s != nil {
		opts.Resume = s
		g.forkResumes.Add(1)
		g.forkCyclesSaved.Add(s.Cycle())
	}
	if g.Ckpt.Converge {
		if persistent {
			g.convergeDisabled.Add(1)
		} else {
			opts.Converge = g.Snaps
		}
	}
	opts.Pool = g.pool
}

// classifyConverged classifies a run that joined back to golden: its
// remaining trajectory is bit-identical to the golden suffix, so the final
// Result it would have produced is the golden Result itself — including
// Cycles, which is why a converged run can never be control-affected.
// The injected flag is passed through so the Masked detail matches what the
// brute-force run would report when the flip found no target.
func (g *GoldenRun) classifyConverged(res *sim.Result, injected bool) faults.Result {
	g.convergeHits.Add(1)
	g.convergeCyclesSaved.Add(g.Res.Cycles - res.ConvergedAt)
	return Classify(g, g.Res, injected)
}

// CheckpointCounts returns the golden run's fork/converge statistics and
// snapshot inventory. Safe to call concurrently with injections.
func (g *GoldenRun) CheckpointCounts() CheckpointCounts {
	c := CheckpointCounts{
		ForkResumes:         g.forkResumes.Load(),
		ForkCyclesSaved:     g.forkCyclesSaved.Load(),
		ConvergeHits:        g.convergeHits.Load(),
		ConvergeCyclesSaved: g.convergeCyclesSaved.Load(),
		ConvergeDisabled:    g.convergeDisabled.Load(),
	}
	if g.Snaps != nil {
		// Read-only after the golden run, so these are stable.
		c.Snapshots = int64(g.Snaps.Len())
		c.SnapshotBytes = g.Snaps.Bytes()
		c.Evictions = g.Snaps.Evicted()
	}
	return c
}
