package microfi

import (
	"math/rand"
	"testing"

	"gpurel/internal/ace"
	"gpurel/internal/device"
	"gpurel/internal/faults"
	"gpurel/internal/flow"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
)

// overAllocJob is saxpy with four padding registers per thread: allocated in
// the RF but never touched by any instruction, so statically provably dead.
// Real kernels carry such over-allocation too (allocation granularity), which
// is exactly what static pruning harvests without a trace.
func overAllocJob(n int) *device.Job {
	job := saxpyJob(n)
	job.Steps[0].Launch.Kernel.NumRegs += 4
	return job
}

func TestStaticDeadRegs(t *testing.T) {
	job := overAllocJob(256)
	dead := StaticDeadRegs(job)
	prog := job.Steps[0].Launch.Kernel
	d := dead[prog]
	if len(d) != prog.NumRegs {
		t.Fatalf("dead map has %d entries, want %d", len(d), prog.NumRegs)
	}
	for r := prog.NumRegs - 4; r < prog.NumRegs; r++ {
		if !d[r] {
			t.Errorf("padding register R%d must be statically dead", r)
		}
	}
	nDead := 0
	for _, v := range d {
		if v {
			nDead++
		}
	}
	if nDead == prog.NumRegs {
		t.Error("every register statically dead — analysis is broken")
	}
}

// TestInjectStaticDeadEquivalence is the property behind boolean static
// pruning: for every seed, InjectStaticDead classifies bit-identically to
// the brute-force Inject, with provably-dead hits short-circuited.
func TestInjectStaticDeadEquivalence(t *testing.T) {
	job := overAllocJob(256)
	cfg := gpu.Volta()
	g, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dead := StaticDeadRegs(job)
	for _, burst := range []int{1, 3} {
		tgt := Target{Structure: gpu.RF, Kernel: "K1", Burst: burst}
		pruned, simulated := 0, 0
		for seed := int64(0); seed < 120; seed++ {
			want := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
			got, wasPruned := InjectStaticDead(job, g, dead, tgt, rand.New(rand.NewSource(seed)))
			if got != want {
				t.Fatalf("burst %d seed %d: static %+v != brute-force %+v (pruned=%v)",
					burst, seed, got, want, wasPruned)
			}
			if wasPruned {
				pruned++
				if got.Outcome != faults.Masked {
					t.Fatalf("burst %d seed %d: pruned a non-masked outcome %+v", burst, seed, got)
				}
			} else {
				simulated++
			}
		}
		t.Logf("burst %d: %d pruned, %d simulated", burst, pruned, simulated)
		if pruned == 0 {
			t.Errorf("burst %d: no runs pruned — static dead set finds no sites", burst)
		}
		if simulated == 0 {
			t.Errorf("burst %d: all runs pruned — suspiciously aggressive", burst)
		}
	}
}

// TestInjectStaticDeadCampaignTally: aggregated campaign tallies are
// bit-identical between brute force and boolean static pruning (same seeds
// → same per-run results → same counts).
func TestInjectStaticDeadCampaignTally(t *testing.T) {
	job := overAllocJob(128)
	cfg := gpu.Volta()
	g, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dead := StaticDeadRegs(job)
	tgt := Target{Structure: gpu.RF, Kernel: "K1"}
	var brute, static [faults.NumOutcomes]int
	for seed := int64(0); seed < 80; seed++ {
		brute[Inject(job, g, tgt, rand.New(rand.NewSource(seed))).Outcome]++
		r, _ := InjectStaticDead(job, g, dead, tgt, rand.New(rand.NewSource(seed)))
		static[r.Outcome]++
	}
	if brute != static {
		t.Fatalf("campaign tallies differ: brute=%v static=%v", brute, static)
	}
}

// TestInjectStaticDeadNonRF: other structures and a nil dead set fall
// through to Inject verbatim.
func TestInjectStaticDeadNonRF(t *testing.T) {
	job := overAllocJob(128)
	cfg := gpu.Volta()
	g, _ := Golden(job, cfg)
	dead := StaticDeadRegs(job)
	for _, st := range []gpu.Structure{gpu.SMEM, gpu.L2} {
		tgt := Target{Structure: st, Kernel: "K1"}
		for seed := int64(0); seed < 15; seed++ {
			want := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
			got, wasPruned := InjectStaticDead(job, g, dead, tgt, rand.New(rand.NewSource(seed)))
			if wasPruned {
				t.Fatalf("%s: non-RF run must never be statically pruned", st)
			}
			if got != want {
				t.Fatalf("%s seed %d: %+v != %+v", st, seed, got, want)
			}
		}
	}
	want := Inject(job, g, Target{Structure: gpu.RF, Kernel: "K1"}, rand.New(rand.NewSource(7)))
	got, wasPruned := InjectStaticDead(job, g, nil, Target{Structure: gpu.RF, Kernel: "K1"}, rand.New(rand.NewSource(7)))
	if wasPruned || got != want {
		t.Errorf("nil dead set must behave as Inject: %+v vs %+v", got, want)
	}
}

// TestStaticSubsetOfDynamic proves the soundness property on every built-in
// kernel of all 11 apps: a statically-dead architectural register is
// dynamically dead at every allocated site and cycle of the traced run
// (static-dead ⊆ ace-dead). The converse is of course false — the dynamic
// map also knows about last-read-to-overwrite windows.
func TestStaticSubsetOfDynamic(t *testing.T) {
	cfg := gpu.Volta()
	for _, app := range kernels.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			job := app.Build()
			dead := StaticDeadRegs(job)
			progByName := map[string]*deadProg{}
			for i := range job.Steps {
				if l := job.Steps[i].Launch; l != nil {
					progByName[l.Name()] = &deadProg{numRegs: l.Kernel.NumRegs, dead: dead[l.Kernel]}
				}
			}
			g, err := Golden(job, cfg)
			if err != nil {
				t.Fatal(err)
			}
			lv, err := ace.TraceRF(job, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checked, deadSites := 0, 0
			for _, span := range g.Res.Spans {
				dp := progByName[span.Kernel]
				if dp == nil {
					t.Fatalf("span kernel %q has no launch", span.Kernel)
				}
				// Sample cycles across the span; launches are sequential, so
				// every block allocated in this window belongs to this kernel.
				for s := 0; s < 8; s++ {
					cycle := span.Start + 1 + (span.End-span.Start-1)*int64(s)/8
					for sm := 0; sm < lv.NumSMs(); sm++ {
						for _, blk := range lv.RFBlocksAt(sm, cycle, nil) {
							for k := 0; k < blk.Size; k++ {
								if !dp.dead[k%dp.numRegs] {
									continue
								}
								deadSites++
								if lv.Live(sm, blk.Base+k, cycle) {
									t.Fatalf("kernel %s: statically-dead R%d live at sm=%d phys=%d cycle=%d",
										span.Kernel, k%dp.numRegs, sm, blk.Base+k, cycle)
								}
							}
							checked += blk.Size
						}
					}
				}
			}
			t.Logf("%s: %d sites checked, %d statically dead", app.Name, checked, deadSites)
		})
	}
}

type deadProg struct {
	numRegs int
	dead    []bool
}

// progAt maps an injection cycle back to the program of the kernel whose
// launch span covers it (launches are sequential).
func progAt(job *device.Job, spans []sim.LaunchSpan, cycle int64) *isa.Program {
	for _, s := range spans {
		if s.Start < cycle && cycle <= s.End {
			for i := range job.Steps {
				if l := job.Steps[i].Launch; l != nil && l.Name() == s.Kernel {
					return l.Kernel
				}
			}
		}
	}
	return nil
}

// drawStatic replays the transient injector's RNG draw sequence against the
// static allocation timeline without simulating anything, returning the
// drawn site. ok is false when the run never draws one (empty window, ECC
// screen, or nothing allocated at the cycle).
func drawStatic(g *GoldenRun, si *StaticIntervals, t Target, rng *rand.Rand) (sm, idx int, cycle int64, ok bool) {
	cycle, _, _, done := t.preflight(g, rng)
	if done {
		return 0, 0, 0, false
	}
	blocksAt, bits := si.IV.RFBlocksAt, 32
	if t.Structure == gpu.SMEM {
		blocksAt, bits = si.IV.SmemBlocksAt, 8
	}
	var blocks []flow.Blk
	var smOf []int
	total := 0
	for s := 0; s < si.IV.NumSMs(); s++ {
		n := len(blocks)
		blocks = blocksAt(s, cycle, blocks)
		for range blocks[n:] {
			smOf = append(smOf, s)
		}
	}
	for _, b := range blocks {
		total += b.Size
	}
	if total == 0 {
		return 0, 0, 0, false
	}
	k := rng.Intn(total)
	_ = rng.Intn(bits) // bit draw, irrelevant to deadness
	for i, b := range blocks {
		if k < b.Size {
			return smOf[i], b.Base + k, cycle, true
		}
		k -= b.Size
	}
	panic("drawStatic: overran the allocation timeline")
}

// TestStaticIntervalPruneProperty is the property-test satellite: on every
// shipped app × seed, the interval-based InjectStatic classifies
// bit-identically to brute-force Inject (RF and SMEM), and its prune set is
// a superset of the boolean AlwaysDead prune — any run InjectStaticDead
// short-circuits, InjectStatic must short-circuit too.
func TestStaticIntervalPruneProperty(t *testing.T) {
	cfg := gpu.Volta()
	for _, app := range kernels.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			job := app.Build()
			si, err := TraceStatic(job, cfg)
			if err != nil {
				t.Fatal(err)
			}
			dead := StaticDeadRegs(job)
			g, err := Golden(job, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range []gpu.Structure{gpu.RF, gpu.SMEM} {
				tgt := Target{Structure: st}
				var brute, static [faults.NumOutcomes]int
				intervalPruned, deadPruned := 0, 0
				seeds := int64(10)
				if st == gpu.SMEM {
					seeds = 6
				}
				for seed := int64(0); seed < seeds; seed++ {
					want := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
					got, pruned := InjectStatic(job, g, si, tgt, rand.New(rand.NewSource(seed)))
					if got != want {
						t.Fatalf("%s seed %d: interval prune altered the outcome: %+v (pruned=%v) != %+v",
							st, seed, got, pruned, want)
					}
					brute[want.Outcome]++
					static[got.Outcome]++
					if pruned {
						intervalPruned++
					}
					if st == gpu.RF {
						_, dp := InjectStaticDead(job, g, dead, tgt, rand.New(rand.NewSource(seed)))
						if dp {
							deadPruned++
							if !pruned {
								t.Fatalf("seed %d: AlwaysDead pruned but the interval prune did not — superset violated", seed)
							}
						}
					}
				}
				if brute != static {
					t.Fatalf("%s: campaign tallies differ: brute=%v static=%v", st, brute, static)
				}
				t.Logf("%s: interval pruned %d/%d (always-dead %d)", st, intervalPruned, seeds, deadPruned)
			}
		})
	}
}

// BenchmarkStaticPrune measures the static pre-classification and asserts
// the acceptance criterion: interval pruning pre-classifies a strictly
// larger run fraction than the AlwaysDead prune on at least 8 of the 11
// apps (it can only tie where a kernel leaves nothing dead to harvest), the
// interval prune set is a per-draw superset of the AlwaysDead set, and a
// simulated campaign's final tallies are bit-identical to brute force.
func BenchmarkStaticPrune(b *testing.B) {
	cfg := gpu.Volta()
	type appState struct {
		app  kernels.App
		job  *device.Job
		g    *GoldenRun
		si   *StaticIntervals
		dead StaticDead
	}
	var apps []appState
	for _, app := range kernels.All() {
		job := app.Build()
		g, err := Golden(job, cfg)
		if err != nil {
			b.Fatal(err)
		}
		si, err := TraceStatic(job, cfg)
		if err != nil {
			b.Fatal(err)
		}
		apps = append(apps, appState{app, job, g, si, StaticDeadRegs(job)})
	}
	const drawSeeds = 400
	tgt := Target{Structure: gpu.RF}
	intervalHits := make([]int, len(apps))
	deadHits := make([]int, len(apps))
	draws := make([]int, len(apps))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ai := range apps {
			a := &apps[ai]
			intervalHits[ai], deadHits[ai], draws[ai] = 0, 0, 0
			for seed := int64(0); seed < drawSeeds; seed++ {
				sm, idx, cycle, ok := drawStatic(a.g, a.si, tgt, rand.New(rand.NewSource(seed)))
				if !ok {
					continue
				}
				draws[ai]++
				ivDead := !a.si.IV.LiveRF(sm, idx, cycle)
				adDead := false
				if p := progAt(a.job, a.si.Spans, cycle); p != nil {
					if d := a.dead[p]; d != nil {
						adDead = d[idx%p.NumRegs]
					}
				}
				if adDead && !ivDead {
					b.Fatalf("%s seed %d: AlwaysDead site not interval-dead (sm=%d idx=%d cycle=%d)",
						a.app.Name, seed, sm, idx, cycle)
				}
				if ivDead {
					intervalHits[ai]++
				}
				if adDead {
					deadHits[ai]++
				}
			}
		}
	}
	b.StopTimer()

	strictlyLarger := 0
	var sumIv, sumDead float64
	for ai := range apps {
		ivFrac := float64(intervalHits[ai]) / float64(drawSeeds)
		dFrac := float64(deadHits[ai]) / float64(drawSeeds)
		sumIv += ivFrac
		sumDead += dFrac
		if intervalHits[ai] > deadHits[ai] {
			strictlyLarger++
		}
		b.Logf("%-10s interval prune %5.1f%%  always-dead %5.1f%%  (%d draws)",
			apps[ai].app.Name, 100*ivFrac, 100*dFrac, draws[ai])
	}
	if strictlyLarger < 8 {
		b.Fatalf("interval pruning beats AlwaysDead on only %d of %d apps, want >= 8", strictlyLarger, len(apps))
	}
	b.ReportMetric(100*sumIv/float64(len(apps)), "%interval-pruned")
	b.ReportMetric(100*sumDead/float64(len(apps)), "%alwaysdead-pruned")

	// Bit-identity of the end-to-end campaign, small seed set per app.
	for _, a := range apps {
		var brute, static [faults.NumOutcomes]int
		for seed := int64(0); seed < 5; seed++ {
			brute[Inject(a.job, a.g, tgt, rand.New(rand.NewSource(seed))).Outcome]++
			r, _ := InjectStatic(a.job, a.g, a.si, tgt, rand.New(rand.NewSource(seed)))
			static[r.Outcome]++
		}
		if brute != static {
			b.Fatalf("%s: tallies differ: brute=%v static=%v", a.app.Name, brute, static)
		}
	}
}
