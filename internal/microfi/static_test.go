package microfi

import (
	"math/rand"
	"testing"

	"gpurel/internal/ace"
	"gpurel/internal/device"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/kernels"
)

// overAllocJob is saxpy with four padding registers per thread: allocated in
// the RF but never touched by any instruction, so statically provably dead.
// Real kernels carry such over-allocation too (allocation granularity), which
// is exactly what static pruning harvests without a trace.
func overAllocJob(n int) *device.Job {
	job := saxpyJob(n)
	job.Steps[0].Launch.Kernel.NumRegs += 4
	return job
}

func TestStaticDeadRegs(t *testing.T) {
	job := overAllocJob(256)
	dead := StaticDeadRegs(job)
	prog := job.Steps[0].Launch.Kernel
	d := dead[prog]
	if len(d) != prog.NumRegs {
		t.Fatalf("dead map has %d entries, want %d", len(d), prog.NumRegs)
	}
	for r := prog.NumRegs - 4; r < prog.NumRegs; r++ {
		if !d[r] {
			t.Errorf("padding register R%d must be statically dead", r)
		}
	}
	nDead := 0
	for _, v := range d {
		if v {
			nDead++
		}
	}
	if nDead == prog.NumRegs {
		t.Error("every register statically dead — analysis is broken")
	}
}

// TestInjectStaticEquivalence is the central property behind static pruning:
// for every seed, InjectStatic classifies bit-identically to the brute-force
// Inject, with provably-dead hits short-circuited.
func TestInjectStaticEquivalence(t *testing.T) {
	job := overAllocJob(256)
	cfg := gpu.Volta()
	g, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dead := StaticDeadRegs(job)
	for _, burst := range []int{1, 3} {
		tgt := Target{Structure: gpu.RF, Kernel: "K1", Burst: burst}
		pruned, simulated := 0, 0
		for seed := int64(0); seed < 120; seed++ {
			want := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
			got, wasPruned := InjectStatic(job, g, dead, tgt, rand.New(rand.NewSource(seed)))
			if got != want {
				t.Fatalf("burst %d seed %d: static %+v != brute-force %+v (pruned=%v)",
					burst, seed, got, want, wasPruned)
			}
			if wasPruned {
				pruned++
				if got.Outcome != faults.Masked {
					t.Fatalf("burst %d seed %d: pruned a non-masked outcome %+v", burst, seed, got)
				}
			} else {
				simulated++
			}
		}
		t.Logf("burst %d: %d pruned, %d simulated", burst, pruned, simulated)
		if pruned == 0 {
			t.Errorf("burst %d: no runs pruned — static dead set finds no sites", burst)
		}
		if simulated == 0 {
			t.Errorf("burst %d: all runs pruned — suspiciously aggressive", burst)
		}
	}
}

// TestInjectStaticCampaignTally: aggregated campaign tallies are bit-identical
// between brute force and static pruning (same seeds → same per-run results →
// same counts).
func TestInjectStaticCampaignTally(t *testing.T) {
	job := overAllocJob(128)
	cfg := gpu.Volta()
	g, err := Golden(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dead := StaticDeadRegs(job)
	tgt := Target{Structure: gpu.RF, Kernel: "K1"}
	var brute, static [faults.NumOutcomes]int
	for seed := int64(0); seed < 80; seed++ {
		brute[Inject(job, g, tgt, rand.New(rand.NewSource(seed))).Outcome]++
		r, _ := InjectStatic(job, g, dead, tgt, rand.New(rand.NewSource(seed)))
		static[r.Outcome]++
	}
	if brute != static {
		t.Fatalf("campaign tallies differ: brute=%v static=%v", brute, static)
	}
}

// TestInjectStaticNonRF: other structures and a nil dead set fall through to
// Inject verbatim.
func TestInjectStaticNonRF(t *testing.T) {
	job := overAllocJob(128)
	cfg := gpu.Volta()
	g, _ := Golden(job, cfg)
	dead := StaticDeadRegs(job)
	for _, st := range []gpu.Structure{gpu.SMEM, gpu.L2} {
		tgt := Target{Structure: st, Kernel: "K1"}
		for seed := int64(0); seed < 15; seed++ {
			want := Inject(job, g, tgt, rand.New(rand.NewSource(seed)))
			got, wasPruned := InjectStatic(job, g, dead, tgt, rand.New(rand.NewSource(seed)))
			if wasPruned {
				t.Fatalf("%s: non-RF run must never be statically pruned", st)
			}
			if got != want {
				t.Fatalf("%s seed %d: %+v != %+v", st, seed, got, want)
			}
		}
	}
	want := Inject(job, g, Target{Structure: gpu.RF, Kernel: "K1"}, rand.New(rand.NewSource(7)))
	got, wasPruned := InjectStatic(job, g, nil, Target{Structure: gpu.RF, Kernel: "K1"}, rand.New(rand.NewSource(7)))
	if wasPruned || got != want {
		t.Errorf("nil dead set must behave as Inject: %+v vs %+v", got, want)
	}
}

// TestStaticSubsetOfDynamic proves the soundness property on every built-in
// kernel of all 11 apps: a statically-dead architectural register is
// dynamically dead at every allocated site and cycle of the traced run
// (static-dead ⊆ ace-dead). The converse is of course false — the dynamic
// map also knows about last-read-to-overwrite windows.
func TestStaticSubsetOfDynamic(t *testing.T) {
	cfg := gpu.Volta()
	for _, app := range kernels.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			job := app.Build()
			dead := StaticDeadRegs(job)
			progByName := map[string]*deadProg{}
			for i := range job.Steps {
				if l := job.Steps[i].Launch; l != nil {
					progByName[l.Name()] = &deadProg{numRegs: l.Kernel.NumRegs, dead: dead[l.Kernel]}
				}
			}
			g, err := Golden(job, cfg)
			if err != nil {
				t.Fatal(err)
			}
			lv, err := ace.TraceRF(job, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checked, deadSites := 0, 0
			for _, span := range g.Res.Spans {
				dp := progByName[span.Kernel]
				if dp == nil {
					t.Fatalf("span kernel %q has no launch", span.Kernel)
				}
				// Sample cycles across the span; launches are sequential, so
				// every block allocated in this window belongs to this kernel.
				for s := 0; s < 8; s++ {
					cycle := span.Start + 1 + (span.End-span.Start-1)*int64(s)/8
					for sm := 0; sm < lv.NumSMs(); sm++ {
						for _, blk := range lv.RFBlocksAt(sm, cycle, nil) {
							for k := 0; k < blk.Size; k++ {
								if !dp.dead[k%dp.numRegs] {
									continue
								}
								deadSites++
								if lv.Live(sm, blk.Base+k, cycle) {
									t.Fatalf("kernel %s: statically-dead R%d live at sm=%d phys=%d cycle=%d",
										span.Kernel, k%dp.numRegs, sm, blk.Base+k, cycle)
								}
							}
							checked += blk.Size
						}
					}
				}
			}
			t.Logf("%s: %d sites checked, %d statically dead", app.Name, checked, deadSites)
		})
	}
}

type deadProg struct {
	numRegs int
	dead    []bool
}
