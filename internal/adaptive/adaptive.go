// Package adaptive is the statistics-driven campaign engine layered on
// campaign.RunRange. The paper's methodology fixes n=3000 injections per
// point (±2.35% at 99% confidence, §II-A), spending the same budget on
// near-zero-FR points as on high-variance ones; this package concentrates
// effort where the variance lives, without giving up determinism:
//
//   - sequential early stopping (Run): execute deterministic batches of
//     run indices and stop at the first batch boundary where the
//     Wilson-score 99% CI half-width for the failure rate reaches the
//     target margin. Batch k always covers the fixed run-index range
//     [k·Batch, (k+1)·Batch), so an interrupted-and-resumed campaign
//     tallies bit-identically to an uninterrupted one.
//
//   - stratified sampling with Neyman allocation (Stratified): run a pilot
//     per stratum, then allocate the remaining budget proportionally to
//     weight × estimated standard deviation, so dead strata (RF entries
//     that are never live, clean cache lines) stop at the pilot while
//     high-variance strata absorb the budget.
//
//   - liveness-guided pruning (Counters.Instrument): an experiment that can
//     classify provably-dead injection sites analytically (for the register
//     file, microfi.InjectPruned backed by internal/ace liveness intervals)
//     is wrapped into a plain campaign.Experiment whose prune hits are
//     tallied separately, keeping the outcome classification bit-exact with
//     brute force while skipping the simulations.
package adaptive

import (
	"math"
	"math/rand"
	"sync/atomic"

	"gpurel/internal/campaign"
	"gpurel/internal/faults"
)

// DefaultBatch is the evaluation granularity when a policy leaves Batch
// unset. It matches the campaign service's default checkpoint chunk, so a
// service-run adaptive job evaluates its stop rule at the same prefixes as a
// local one.
const DefaultBatch = 100

// Policy configures sequential early stopping.
type Policy struct {
	// Margin is the target Wilson-score 99% CI half-width on the failure
	// rate; the campaign stops at the first batch boundary at or under it.
	// <= 0 disables early stopping (fixed-n behaviour).
	Margin float64
	// Batch is the run-index granularity at which the stop rule is
	// evaluated (default DefaultBatch). The stop decision after batch k
	// depends only on the tally of runs [0, (k+1)·Batch), which is
	// deterministic for a given seed — never on scheduling or chunking.
	Batch int
	// MinRuns is the minimum sample before stopping is considered
	// (default Batch). Guards against stopping on a lucky tiny prefix.
	MinRuns int
}

func (p Policy) withDefaults() Policy {
	if p.Batch <= 0 {
		p.Batch = DefaultBatch
	}
	if p.MinRuns <= 0 {
		p.MinRuns = p.Batch
	}
	return p
}

// StopSatisfied reports whether a prefix tally meets the policy's stopping
// rule — the single predicate shared by Run, Stratified, and the campaign
// service's batch-by-batch scheduler, so all three stop at the same n.
func (p Policy) StopSatisfied(t campaign.Tally) bool {
	p = p.withDefaults()
	return p.Margin > 0 && t.N >= p.MinRuns && t.Margin99() <= p.Margin
}

// Result reports one adaptive campaign.
type Result struct {
	Tally        campaign.Tally
	Batches      int  // batches executed
	EarlyStopped bool // stopped by margin before exhausting opts.Runs
	Saved        int  // runs not executed thanks to early stopping
}

// Run executes an adaptive campaign over at most opts.Runs injections.
// Identical inputs produce identical results; the tally always equals
// campaign.RunRange(opts, 0, n, fn) for the n it stops at.
func Run(opts campaign.Options, pol Policy, fn campaign.Experiment) Result {
	pol = pol.withDefaults()
	var res Result
	res.Batches, res.EarlyStopped = runBatches(opts, pol, fn, &res.Tally, 0, opts.Runs)
	res.Saved = opts.Runs - res.Tally.N
	return res
}

// runBatches drives [from, to) in batch-aligned steps, merging into t, and
// reports (batches run, stopped early). Batch boundaries are absolute run
// indices (multiples of pol.Batch), not relative to from, so a campaign
// resumed mid-way evaluates the stop rule at the same prefixes.
func runBatches(opts campaign.Options, pol Policy, fn campaign.Experiment, t *campaign.Tally, from, to int) (int, bool) {
	batches := 0
	for from < to {
		next := (from/pol.Batch + 1) * pol.Batch
		if next > to {
			next = to
		}
		t.Merge(campaign.RunRange(opts, from, next, fn))
		batches++
		from = next
		if pol.StopSatisfied(*t) {
			return batches, from < to
		}
	}
	return batches, false
}

// PrunedExperiment is an experiment that may classify a run analytically
// instead of simulating it; the second return value reports a prune hit.
// The faults.Result must be bit-identical to what the simulated run would
// classify (microfi.InjectPruned guarantees this for RF sites).
type PrunedExperiment func(run int, rng *rand.Rand) (faults.Result, bool)

// Counters aggregates sampling-efficiency statistics across campaigns: how
// many injections were actually simulated, how many were classified
// analytically (prune hits), and how many were never run at all thanks to
// early stopping. Safe for concurrent use.
type Counters struct {
	Simulated atomic.Int64
	Pruned    atomic.Int64
	Saved     atomic.Int64
}

// Instrument adapts a PrunedExperiment into a plain campaign.Experiment,
// tallying prune hits and simulations into the counters (nil Counters are
// allowed and count nothing).
func (c *Counters) Instrument(fn PrunedExperiment) campaign.Experiment {
	return func(run int, rng *rand.Rand) faults.Result {
		r, pruned := fn(run, rng)
		if c != nil {
			if pruned {
				c.Pruned.Add(1)
			} else {
				c.Simulated.Add(1)
			}
		}
		return r
	}
}

// Count wraps a plain experiment so its executions land in Simulated.
func (c *Counters) Count(fn campaign.Experiment) campaign.Experiment {
	return func(run int, rng *rand.Rand) faults.Result {
		if c != nil {
			c.Simulated.Add(1)
		}
		return fn(run, rng)
	}
}

// neymanShares splits budget across strata proportionally to score, by
// largest-remainder rounding with index order as the deterministic
// tie-break, capping each stratum at its cap and waterfilling the excess.
// Σ shares == min(budget, Σ caps).
func neymanShares(budget int, scores []float64, caps []int) []int {
	n := len(scores)
	out := make([]int, n)
	if budget <= 0 {
		return out
	}
	// Degenerate scores (all zero): nothing demands budget; leave it unspent.
	var total float64
	for _, s := range scores {
		total += s
	}
	if total <= 0 || math.IsNaN(total) {
		return out
	}
	remaining := budget
	active := make([]bool, n)
	for i := range active {
		active[i] = caps[i] > 0 && scores[i] > 0
	}
	for remaining > 0 {
		var sum float64
		anyActive := false
		for i := range scores {
			if active[i] {
				sum += scores[i]
				anyActive = true
			}
		}
		if !anyActive {
			break
		}
		// Proportional floor allocation over active strata.
		give := make([]int, n)
		given := 0
		var fracs []frac
		for i := range scores {
			if !active[i] {
				continue
			}
			exact := float64(remaining) * scores[i] / sum
			give[i] = int(exact)
			given += give[i]
			fracs = append(fracs, frac{i, exact - float64(give[i])})
		}
		// Largest remainders take the leftover units (ties by index order —
		// fracs is built in index order and the sort is stable).
		left := remaining - given
		stableSortByFracDesc(fracs)
		for k := 0; k < len(fracs) && left > 0; k++ {
			give[fracs[k].i]++
			left--
		}
		// Apply caps; anything over a cap returns to the pool for the next
		// waterfill round.
		progress := false
		for i := range give {
			if give[i] == 0 {
				continue
			}
			room := caps[i] - out[i]
			take := give[i]
			if take > room {
				take = room
			}
			if take > 0 {
				out[i] += take
				remaining -= take
				progress = true
			}
			if out[i] >= caps[i] {
				active[i] = false
			}
		}
		if !progress {
			break
		}
	}
	return out
}

type frac struct {
	i int
	f float64
}

// stableSortByFracDesc is an insertion sort: fracs lists are tiny (one entry
// per stratum) and stability keeps the index-order tie-break deterministic.
func stableSortByFracDesc(fr []frac) {
	for i := 1; i < len(fr); i++ {
		for k := i; k > 0 && fr[k].f > fr[k-1].f; k-- {
			fr[k], fr[k-1] = fr[k-1], fr[k]
		}
	}
}
