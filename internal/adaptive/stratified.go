package adaptive

import (
	"math"

	"gpurel/internal/campaign"
)

// Stratum is one partition of the fault space — in the AVF study, one
// storage structure (RF, SMEM, L1D, L1T, L2) whose weight is its share of
// the chip's storage bits, so per-stratum failure rates recombine into the
// size-weighted chip AVF exactly as metrics.ChipAVF does.
type Stratum struct {
	Name string
	// Weight is the stratum's share of the sampled population (need not be
	// normalised); Neyman allocation is proportional to Weight × σ̂.
	Weight float64
	// Opts seeds the stratum's own deterministic run-index space. Opts.Runs
	// caps how many runs the stratum may ever execute.
	Opts campaign.Options
	Fn   campaign.Experiment
}

// StratifiedPolicy configures a stratified adaptive campaign.
type StratifiedPolicy struct {
	Policy
	// Pilot is the per-stratum pilot size used to estimate σ̂ before
	// allocating the remaining budget (default Batch). The pilot always
	// covers run indices [0, Pilot), so results are reproducible regardless
	// of how much budget a stratum later receives.
	Pilot int
	// Budget caps total runs across all strata, pilots included
	// (0 = Σ Opts.Runs, i.e. only the per-stratum caps bind).
	Budget int
}

func (p StratifiedPolicy) withDefaults() StratifiedPolicy {
	p.Policy = p.Policy.withDefaults()
	if p.Pilot <= 0 {
		p.Pilot = p.Policy.Batch
	}
	return p
}

// StratumResult reports one stratum of a stratified campaign.
type StratumResult struct {
	Name         string
	Tally        campaign.Tally
	Allocated    int  // extension runs granted by Neyman allocation
	EarlyStopped bool // stopped by margin inside its extension
}

// Saved returns the runs the stratum left unexecuted relative to its cap.
func (r StratumResult) Saved(s Stratum) int { return s.Opts.Runs - r.Tally.N }

// Stratified runs a pilot over every stratum, Neyman-allocates the remaining
// budget to the strata with the highest weighted binomial variance, and
// extends each stratum with sequential early stopping. Every stratum's tally
// is a deterministic prefix of its own run-index space: stratum h with final
// size n_h tallies bit-identically to campaign.RunRange(h.Opts, 0, n_h, h.Fn),
// which is what lets the recombined chip AVF be compared against brute force.
func Stratified(strata []Stratum, pol StratifiedPolicy) []StratumResult {
	pol = pol.withDefaults()
	out := make([]StratumResult, len(strata))

	// Pilot phase: a fixed prefix per stratum, clamped to its cap and to an
	// even split of the budget (so tiny budgets still pilot every stratum).
	budget := pol.Budget
	if budget <= 0 {
		for _, s := range strata {
			budget += s.Opts.Runs
		}
	}
	maxPilot := pol.Pilot
	if len(strata) > 0 {
		if even := budget / len(strata); even < maxPilot {
			maxPilot = even
		}
	}
	spent := 0
	for i, s := range strata {
		pilot := maxPilot
		if pilot > s.Opts.Runs {
			pilot = s.Opts.Runs
		}
		out[i] = StratumResult{Name: s.Name, Tally: campaign.RunRange(s.Opts, 0, pilot, s.Fn)}
		spent += out[i].Tally.N
	}

	// Neyman scores from the pilot: W_h · √(p̂_h(1−p̂_h)). A stratum that
	// already meets the margin target needs no extension; one whose pilot
	// showed zero variance gets the Wilson-honest σ̂ floor (p̂ pulled toward
	// the interval centre) rather than a hard 0, so a 0/100 pilot with a wide
	// Wilson interval can still earn budget when nothing else demands it.
	scores := make([]float64, len(strata))
	caps := make([]int, len(strata))
	for i, s := range strata {
		caps[i] = s.Opts.Runs - out[i].Tally.N
		if pol.StopSatisfied(out[i].Tally) {
			caps[i] = 0
			continue
		}
		p := out[i].Tally.FR()
		if sd := math.Sqrt(p * (1 - p)); sd > 0 {
			scores[i] = s.Weight * sd
		} else {
			lo, hi := out[i].Tally.CI99()
			c := (lo + hi) / 2
			scores[i] = s.Weight * math.Sqrt(c*(1-c))
		}
	}

	// Extension phase: allocate what remains, then run each stratum's share
	// with the sequential stop rule still active.
	for i, share := range neymanShares(budget-spent, scores, caps) {
		out[i].Allocated = share
		if share <= 0 {
			continue
		}
		from := out[i].Tally.N
		_, stopped := runBatches(strata[i].Opts, pol.Policy, strata[i].Fn, &out[i].Tally, from, from+share)
		out[i].EarlyStopped = stopped
	}
	return out
}
