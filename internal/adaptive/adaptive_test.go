package adaptive

import (
	"math/rand"
	"reflect"
	"testing"

	"gpurel/internal/campaign"
	"gpurel/internal/faults"
)

// bernoulli builds a deterministic synthetic experiment with failure
// probability p (SDC on failure), driven only by the per-run RNG.
func bernoulli(p float64) campaign.Experiment {
	return func(run int, rng *rand.Rand) faults.Result {
		if rng.Float64() < p {
			return faults.Result{Outcome: faults.SDC}
		}
		return faults.Result{Outcome: faults.Masked}
	}
}

func TestRunStopsOnlyWhenMarginMet(t *testing.T) {
	opts := campaign.Options{Runs: 3000, Seed: 42, Workers: 4}
	pol := Policy{Margin: 0.05, Batch: 100, MinRuns: 100}
	res := Run(opts, pol, bernoulli(0.02))

	if res.Tally.N%pol.Batch != 0 && res.Tally.N != opts.Runs {
		t.Fatalf("stopped at n=%d, not a batch boundary", res.Tally.N)
	}
	if res.EarlyStopped && res.Tally.Margin99() > pol.Margin {
		t.Fatalf("claimed early stop at margin %.4f > target %.4f", res.Tally.Margin99(), pol.Margin)
	}
	if !res.EarlyStopped {
		t.Fatalf("p=0.02 with 5%% target should stop well before %d runs (got n=%d)", opts.Runs, res.Tally.N)
	}
	if res.Saved != opts.Runs-res.Tally.N {
		t.Fatalf("Saved = %d, want %d", res.Saved, opts.Runs-res.Tally.N)
	}

	// Replay every earlier batch boundary: none may already satisfy the stop
	// rule, or Run stopped later than the sequential procedure allows.
	for n := pol.Batch; n < res.Tally.N; n += pol.Batch {
		prefix := campaign.RunRange(opts, 0, n, bernoulli(0.02))
		if pol.StopSatisfied(prefix) {
			t.Fatalf("prefix n=%d already met the margin but Run continued to n=%d", n, res.Tally.N)
		}
	}
	// And the stopping prefix must itself satisfy the rule.
	final := campaign.RunRange(opts, 0, res.Tally.N, bernoulli(0.02))
	if !pol.StopSatisfied(final) {
		t.Fatalf("stopping prefix n=%d does not satisfy the stop rule", res.Tally.N)
	}
	if final != res.Tally {
		t.Fatalf("adaptive tally %+v != plain prefix tally %+v", res.Tally, final)
	}
}

func TestRunNeverStopsBeforeMinRuns(t *testing.T) {
	opts := campaign.Options{Runs: 2000, Seed: 7}
	// p=0 meets any margin quickly under Wilson once n is large enough; the
	// floor must still hold.
	res := Run(opts, Policy{Margin: 0.2, Batch: 50, MinRuns: 400}, bernoulli(0))
	if res.Tally.N < 400 {
		t.Fatalf("stopped at n=%d before MinRuns=400", res.Tally.N)
	}
}

func TestRunDisabledMarginExhaustsBudget(t *testing.T) {
	opts := campaign.Options{Runs: 777, Seed: 3}
	res := Run(opts, Policy{Batch: 100}, bernoulli(0.5))
	if res.Tally.N != 777 || res.EarlyStopped || res.Saved != 0 {
		t.Fatalf("margin<=0 must run everything: %+v", res)
	}
	// The final partial batch must still be executed.
	if res.Batches != 8 {
		t.Fatalf("Batches = %d, want 8 (7 full + 1 partial)", res.Batches)
	}
}

func TestRunDeterminism(t *testing.T) {
	opts := campaign.Options{Runs: 1500, Seed: 99, Workers: 8}
	pol := Policy{Margin: 0.04}
	a := Run(opts, pol, bernoulli(0.03))
	b := Run(opts, pol, bernoulli(0.03))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical adaptive campaigns diverged:\n%+v\n%+v", a, b)
	}
}

// TestRunBatchesResumeIdentity: splitting the batch loop at an arbitrary
// point and resuming produces the same tally and stop decision — the
// invariant the service checkpoint path relies on.
func TestRunBatchesResumeIdentity(t *testing.T) {
	opts := campaign.Options{Runs: 2000, Seed: 11}
	pol := Policy{Margin: 0.05, Batch: 100, MinRuns: 100}
	whole := Run(opts, pol, bernoulli(0.02))

	for _, cut := range []int{100, 300, 50, 275} {
		if cut >= whole.Tally.N {
			continue
		}
		var resumed campaign.Tally
		resumed.Merge(campaign.RunRange(opts, 0, cut, bernoulli(0.02)))
		// Resume from the cut, honoring absolute batch boundaries.
		_, stopped := runBatches(opts, pol.withDefaults(), bernoulli(0.02), &resumed, cut, opts.Runs)
		if resumed != whole.Tally || stopped != whole.EarlyStopped {
			t.Fatalf("resume from %d: tally %+v stopped=%v, want %+v stopped=%v",
				cut, resumed, stopped, whole.Tally, whole.EarlyStopped)
		}
	}
}

func TestCountersInstrument(t *testing.T) {
	var c Counters
	fn := c.Instrument(func(run int, rng *rand.Rand) (faults.Result, bool) {
		if run%3 == 0 {
			return faults.Result{Outcome: faults.Masked}, true
		}
		return faults.Result{Outcome: faults.SDC}, false
	})
	tl := campaign.Run(campaign.Options{Runs: 30, Seed: 1}, fn)
	if tl.N != 30 {
		t.Fatalf("N = %d", tl.N)
	}
	if got := c.Pruned.Load(); got != 10 {
		t.Fatalf("Pruned = %d, want 10", got)
	}
	if got := c.Simulated.Load(); got != 20 {
		t.Fatalf("Simulated = %d, want 20", got)
	}
	// nil receiver must be safe and count nothing.
	var nilc *Counters
	nilfn := nilc.Count(bernoulli(0.5))
	nilfn(0, rand.New(rand.NewSource(1)))
}

func TestNeymanShares(t *testing.T) {
	// Proportional split with largest-remainder rounding sums exactly.
	shares := neymanShares(100, []float64{1, 1, 2}, []int{1000, 1000, 1000})
	if shares[0]+shares[1]+shares[2] != 100 {
		t.Fatalf("shares %v do not sum to the budget", shares)
	}
	if shares[2] != 50 {
		t.Fatalf("score-2 stratum got %d of 100, want 50", shares[2])
	}
	// Caps bind: excess waterfills to the remaining strata.
	shares = neymanShares(100, []float64{10, 1}, []int{5, 1000})
	if shares[0] != 5 || shares[1] != 95 {
		t.Fatalf("capped waterfill gave %v, want [5 95]", shares)
	}
	// All-zero scores spend nothing.
	shares = neymanShares(100, []float64{0, 0}, []int{10, 10})
	if shares[0] != 0 || shares[1] != 0 {
		t.Fatalf("zero-score strata must get nothing: %v", shares)
	}
	// Budget larger than total capacity stops at the caps.
	shares = neymanShares(1000, []float64{1, 1}, []int{3, 4})
	if shares[0] != 3 || shares[1] != 4 {
		t.Fatalf("caps must bound shares: %v", shares)
	}
}

func TestStratifiedAllocatesToVariance(t *testing.T) {
	mk := func(p float64, seed int64) Stratum {
		return Stratum{
			Name:   "s",
			Weight: 1,
			Opts:   campaign.Options{Runs: 2000, Seed: seed},
			Fn:     bernoulli(p),
		}
	}
	strata := []Stratum{mk(0.5, 1), mk(0, 2)} // max variance vs none observed
	pol := StratifiedPolicy{Policy: Policy{Margin: 0.001, Batch: 100}, Pilot: 200, Budget: 1200}
	res := Stratified(strata, pol)

	if res[0].Tally.N < 200 || res[1].Tally.N < 200 {
		t.Fatalf("every stratum must get its pilot: %d, %d", res[0].Tally.N, res[1].Tally.N)
	}
	total := res[0].Tally.N + res[1].Tally.N
	if total > pol.Budget {
		t.Fatalf("spent %d > budget %d", total, pol.Budget)
	}
	if res[0].Allocated <= res[1].Allocated {
		t.Fatalf("high-variance stratum got %d extension runs, zero-FR got %d",
			res[0].Allocated, res[1].Allocated)
	}

	// Each stratum's tally is a bit-identical prefix of its own plain
	// campaign — the recombination-vs-brute-force guarantee.
	for i, s := range strata {
		want := campaign.RunRange(s.Opts, 0, res[i].Tally.N, s.Fn)
		if want != res[i].Tally {
			t.Fatalf("stratum %d tally %+v != plain prefix %+v", i, res[i].Tally, want)
		}
	}
}

func TestStratifiedStopsSatisfiedStrata(t *testing.T) {
	strata := []Stratum{
		{Name: "dead", Weight: 1, Opts: campaign.Options{Runs: 3000, Seed: 5}, Fn: bernoulli(0)},
		{Name: "live", Weight: 1, Opts: campaign.Options{Runs: 3000, Seed: 6}, Fn: bernoulli(0.3)},
	}
	// Margin generous enough that the zero-FR pilot already satisfies it
	// under Wilson (0 failures in 400 → margin ≈ 0.011).
	pol := StratifiedPolicy{Policy: Policy{Margin: 0.05, Batch: 100}, Pilot: 400, Budget: 6000}
	res := Stratified(strata, pol)
	if res[0].Allocated != 0 {
		t.Fatalf("pilot-satisfied stratum still got %d extension runs", res[0].Allocated)
	}
	if res[0].Tally.N != 400 {
		t.Fatalf("dead stratum ran %d, want pilot only", res[0].Tally.N)
	}
	if res[1].Tally.N <= 400 {
		t.Fatal("live stratum received no extension")
	}
	if res[1].Tally.Margin99() > pol.Margin && res[1].Tally.N < strata[1].Opts.Runs {
		t.Fatalf("live stratum stopped at margin %.4f > %.4f with budget left",
			res[1].Tally.Margin99(), pol.Margin)
	}
}

func TestStratifiedDeterminism(t *testing.T) {
	strata := []Stratum{
		{Name: "a", Weight: 3, Opts: campaign.Options{Runs: 1000, Seed: 21, Workers: 4}, Fn: bernoulli(0.1)},
		{Name: "b", Weight: 1, Opts: campaign.Options{Runs: 1000, Seed: 22, Workers: 4}, Fn: bernoulli(0.4)},
	}
	pol := StratifiedPolicy{Policy: Policy{Margin: 0.03}, Budget: 1500}
	a := Stratified(strata, pol)
	b := Stratified(strata, pol)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("stratified campaigns diverged:\n%+v\n%+v", a, b)
	}
}
