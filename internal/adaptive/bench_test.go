package adaptive

import (
	"encoding/json"
	"os"
	"testing"

	"gpurel/internal/campaign"
)

// BenchmarkAdaptive_RunsSaved is the headline acceptance benchmark: on a
// low-FR point (p ≈ 0.01, typical of protected structures and high-masking
// kernels in the paper's Fig. 5), sequential stopping reaches the paper's
// ±2.35% @99% precision target with at least 3× fewer runs than the fixed
// n=3000 design. With GPUREL_BENCH_JSON set, a machine-readable summary is
// written there for the CI artifact.
func BenchmarkAdaptive_RunsSaved(b *testing.B) {
	const fixedRuns = 3000
	opts := campaign.Options{Runs: fixedRuns, Seed: 1234}
	target := campaign.WorstCaseMargin99(fixedRuns) // the paper's ±2.35%
	pol := Policy{Margin: target, Batch: 100}
	fn := bernoulli(0.01)

	var res Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Run(opts, pol, fn)
	}
	b.StopTimer()

	if res.Tally.Margin99() > target {
		b.Fatalf("adaptive stopped at margin %.4f, looser than the fixed design's %.4f",
			res.Tally.Margin99(), target)
	}
	factor := float64(fixedRuns) / float64(res.Tally.N)
	if factor < 3 {
		b.Fatalf("adaptive used %d runs — only %.2f× fewer than %d, want >= 3×",
			res.Tally.N, factor, fixedRuns)
	}
	b.ReportMetric(float64(res.Tally.N), "adaptive-runs")
	b.ReportMetric(factor, "x-fewer-runs")
	b.ReportMetric(res.Tally.Margin99(), "margin99")

	if path := os.Getenv("GPUREL_BENCH_JSON"); path != "" {
		out, err := json.MarshalIndent(map[string]any{
			"benchmark":      "Adaptive_RunsSaved",
			"fixed_runs":     fixedRuns,
			"adaptive_runs":  res.Tally.N,
			"runs_saved":     res.Saved,
			"savings_factor": factor,
			"target_margin":  target,
			"margin99":       res.Tally.Margin99(),
			"failure_rate":   res.Tally.FR(),
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
