package funcsim

import (
	"bytes"
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// square builds out[i] = in[i]*in[i].
func square(n int) *isa.Program {
	b := kasm.New("square")
	i := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	p := b.P()
	b.ISetpI(p, isa.CmpLT, i, int32(n))
	b.If(p, false, func() {
		v := b.Ldg(b.IScAdd(i, b.Param(0), 2), 0)
		b.Stg(b.IScAdd(i, b.Param(1), 2), 0, b.IMul(v, v))
	})
	b.FreeP(p)
	return b.MustBuild()
}

func squareJob(n int) *device.Job {
	m := device.NewMemory(1 << 18)
	in := m.Alloc("in", 4*n)
	out := m.Alloc("out", 4*n)
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i)
	}
	m.WriteU32s(in, vals)
	return &device.Job{
		Name: "sq", Mem: m,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: square(n), KernelName: "K1",
			GridX: 2, GridY: 1, BlockX: n / 2, BlockY: 1,
			Params: []uint32{in, out}, ParamIsPtr: []bool{true, true},
		}}},
		Outputs: []device.Output{{Name: "out", Addr: out, Size: uint32(4 * n)}},
	}
}

func TestFunctionalRun(t *testing.T) {
	job := squareJob(128)
	r := Run(job, Options{CollectWindows: true})
	if r.Err != nil || r.TimedOut {
		t.Fatalf("run failed: %v", r.Err)
	}
	for i := 0; i < 128; i++ {
		got := uint32(r.Output[4*i]) | uint32(r.Output[4*i+1])<<8 |
			uint32(r.Output[4*i+2])<<16 | uint32(r.Output[4*i+3])<<24
		if got != uint32(i*i) {
			t.Fatalf("out[%d] = %d", i, got)
		}
	}
	kc := r.PerKernel["K1"]
	if kc == nil || kc.DynInstrs == 0 {
		t.Fatal("missing kernel counts")
	}
	if len(kc.DstWindows) != 1 || kc.DstWindows[0].Len() != r.DstCands {
		t.Errorf("dst window %+v must cover all %d candidates", kc.DstWindows, r.DstCands)
	}
	if r.LoadCands == 0 || r.LoadCands >= r.DstCands {
		t.Errorf("load candidates (%d) must be a proper subset of writes (%d)", r.LoadCands, r.DstCands)
	}
	if r.UseCands == 0 {
		t.Error("use candidates must be counted when collecting windows")
	}
}

func TestInjectionDeterminism(t *testing.T) {
	job := squareJob(128)
	inj := &Injection{Mode: InjectDst, Index: 100, Bit: 7}
	a := Run(job, Options{Inject: inj})
	b := Run(job, Options{Inject: inj})
	if !bytes.Equal(a.Output, b.Output) {
		t.Error("identical injections must produce identical outputs")
	}
}

func TestInjectionCorrupts(t *testing.T) {
	job := squareJob(128)
	golden := Run(job, Options{CollectWindows: true})
	// sample injection sites across the whole dynamic-write space; flipping
	// bit 30 must corrupt the output (or crash) for some of them
	diff := false
	for k := int64(0); k < 40 && !diff; k++ {
		idx := (k * 97) % golden.DstCands
		r := Run(job, Options{Inject: &Injection{Mode: InjectDst, Index: idx, Bit: 30}})
		if r.Err != nil || !bytes.Equal(r.Output, golden.Output) {
			diff = true
		}
	}
	if !diff {
		t.Error("no injection corrupted the output")
	}
}

func TestInjectLoadOnlyTargetsLoads(t *testing.T) {
	job := squareJob(64)
	g := Run(job, Options{CollectWindows: true})
	// Inject into load candidates. Bit 31 would be arithmetically masked by
	// the squaring (2·v·2^31 ≡ 0 mod 2^32), so flip bit 16.
	hit := 0
	for idx := int64(0); idx < g.LoadCands; idx += 3 {
		r := Run(job, Options{Inject: &Injection{Mode: InjectDstLoad, Index: idx, Bit: 16}})
		if r.Err != nil || !bytes.Equal(r.Output, g.Output) {
			hit++
		}
	}
	if hit == 0 {
		t.Error("load-only injections never propagated")
	}
}

func TestInjectUseDoesNotPersist(t *testing.T) {
	// A use-mode injection corrupts a single read; the stored register keeps
	// its value. Build a kernel that reads the same register twice and
	// stores both reads: only one store may be corrupted.
	b := kasm.New("twice")
	v := b.MovI(5)
	b.Stg(b.Param(0), 0, v)
	b.Stg(b.Param(0), 4, v)
	prog := b.MustBuild()
	m := device.NewMemory(1 << 14)
	out := m.Alloc("out", 8)
	job := &device.Job{
		Name: "u", Mem: m,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: prog, GridX: 1, GridY: 1, BlockX: 1, BlockY: 1,
			Params: []uint32{out}, ParamIsPtr: []bool{true},
		}}},
		Outputs: []device.Output{{Name: "out", Addr: out, Size: 8}},
	}
	g := Run(job, Options{CollectWindows: true})
	corrupted := 0
	for idx := int64(0); idx < g.UseCands; idx++ {
		r := Run(job, Options{Inject: &Injection{Mode: InjectUse, Index: idx, Bit: 1}})
		if r.Err != nil {
			continue
		}
		a := r.Output[0] != g.Output[0]
		bC := r.Output[4] != g.Output[4]
		if a && bC {
			t.Fatalf("use-mode injection at %d persisted across two reads", idx)
		}
		if a || bC {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Error("no use injection had any effect")
	}
}

func TestHostStepJump(t *testing.T) {
	m := device.NewMemory(1 << 14)
	cnt := m.Alloc("cnt", 4)
	prog := func() *isa.Program {
		b := kasm.New("inc")
		p := b.P()
		b.ISetpI(p, isa.CmpEQ, b.S2R(isa.SRTidX), 0)
		b.If(p, false, func() {
			a := b.Param(0)
			b.Stg(a, 0, b.IAddI(b.Ldg(a, 0), 1))
		})
		b.FreeP(p)
		return b.MustBuild()
	}()
	job := &device.Job{
		Name: "loop", Mem: m,
		Steps: []device.Step{
			{Launch: &device.Launch{Kernel: prog, GridX: 1, GridY: 1, BlockX: 32, BlockY: 1,
				Params: []uint32{cnt}, ParamIsPtr: []bool{true}}},
			{Host: func(mm *device.Memory, off uint32) int {
				if mm.PeekU32(cnt+off) < 5 {
					return 0
				}
				return -1
			}},
		},
		Outputs: []device.Output{{Name: "cnt", Addr: cnt, Size: 4}},
	}
	r := Run(job, Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Output[0] != 5 {
		t.Errorf("host loop ran kernel %d times, want 5", r.Output[0])
	}
}

func TestScheduleBudgetTimeout(t *testing.T) {
	m := device.NewMemory(1 << 14)
	job := &device.Job{
		Name: "spin", Mem: m,
		Steps: []device.Step{
			{Host: func(mm *device.Memory, off uint32) int { return 0 }}, // infinite loop
		},
	}
	r := Run(job, Options{})
	if !r.TimedOut {
		t.Error("runaway host loop must time out via the schedule budget")
	}
}

func TestDynInstrBudget(t *testing.T) {
	job := squareJob(128)
	r := Run(job, Options{MaxDynInstrs: 10})
	if !r.TimedOut {
		t.Error("tiny instruction budget must time out")
	}
}
