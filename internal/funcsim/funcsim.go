// Package funcsim is the software-level executor: it runs a device.Job with
// pure functional semantics — no caches, no timing, registers as plain
// per-thread state. It is the substrate of the NVBitFI-analogue injector
// (internal/softfi): dynamic instructions are counted per thread, and a
// configurable injection flips one bit of a destination-register value (or,
// in the operand-transient ablation mode, the value seen by one source read).
//
// The speed gap between this executor and the cycle-level simulator is the
// very speed gap the paper attributes to software-level methods (§I fn. 1).
package funcsim

import (
	"fmt"

	"gpurel/internal/device"
	"gpurel/internal/exec"
	"gpurel/internal/isa"
)

// InjectMode selects what the injection corrupts.
type InjectMode uint8

// Injection modes.
const (
	// InjectDst flips a bit of a destination register value right after the
	// chosen dynamic instruction writes it — NVBitFI's model.
	InjectDst InjectMode = iota
	// InjectDstLoad is InjectDst restricted to load instructions (SVF-LD).
	InjectDstLoad
	// InjectUse flips a bit of the value read by one dynamic source-operand
	// use without changing stored state — the "instantaneous" model whose
	// blind spot §V-B describes.
	InjectUse
)

// Injection selects one dynamic injection site. Index counts candidate
// events (destination writes for InjectDst/InjectDstLoad, source reads for
// InjectUse) from 0 across the whole job.
type Injection struct {
	Mode  InjectMode
	Index int64
	Bit   uint8
}

// Window is a half-open interval of candidate indices belonging to one
// kernel, used to target injections at a specific kernel.
type Window struct{ Start, End int64 }

// Len returns the window length.
func (w Window) Len() int64 { return w.End - w.Start }

// KernelCounts aggregates per-kernel dynamic statistics of a golden run.
type KernelCounts struct {
	DynInstrs   int64 // thread-instructions executed (SVF app weighting)
	DstWindows  []Window
	LoadWindows []Window
	UseWindows  []Window
}

// Result reports one functional run.
type Result struct {
	Err       error // non-nil = DUE
	TimedOut  bool
	Output    []byte
	DynInstrs int64
	DstCands  int64
	LoadCands int64
	UseCands  int64
	PerKernel map[string]*KernelCounts
	DUEFlag   bool // application-signalled DUE (TMR voter disagreement)
}

// RegTracer observes architectural register liveness for PVF analysis
// (Sridharan & Kaeli's Program Vulnerability Factor, the paper's §VII).
// CTAs execute sequentially in the functional simulator, so callbacks always
// refer to the most recently started CTA; slot = thread*numRegs + reg.
// The `at` argument is the global dynamic-instruction counter.
type RegTracer interface {
	OnCTAStart(threads, numRegs int, at int64)
	OnRegWrite(slot int, at int64)
	OnRegRead(slot int, at int64)
	OnCTAEnd(at int64)
}

// Options configures a run.
type Options struct {
	// MaxDynInstrs is the timeout budget in thread-instructions (0 = none).
	MaxDynInstrs int64
	Inject       *Injection
	// CollectWindows enables per-kernel window recording (golden runs).
	CollectWindows bool
	// RegTrace, when set, receives architectural register liveness events.
	RegTrace RegTracer
}

// Run executes the job functionally. The job's memory image is cloned, so a
// Job can be reused across runs.
func Run(job *device.Job, opts Options) *Result {
	mem := job.Mem.Clone()
	res := &Result{PerKernel: map[string]*KernelCounts{}}
	r := &runner{mem: mem, opts: opts, res: res}

	maxSteps := job.MaxScheduleSteps()
	stepCount := 0
	for si := 0; si < len(job.Steps); {
		if stepCount >= maxSteps {
			res.TimedOut = true
			return res
		}
		stepCount++
		st := &job.Steps[si]
		if st.Host != nil {
			next := st.Host(mem, 0)
			if next >= 0 {
				si = next
			} else {
				si++
			}
			continue
		}
		if err := r.launch(st.Launch); err != nil {
			if err == errTimeout {
				res.TimedOut = true
			} else {
				res.Err = err
			}
			return res
		}
		si++
	}
	res.Output = job.ReadOutputs(mem)
	if job.DUEFlag != 0 && mem.PeekU32(job.DUEFlag) != 0 {
		res.DUEFlag = true
	}
	return res
}

var errTimeout = fmt.Errorf("dynamic instruction budget exceeded")

type runner struct {
	mem  *device.Memory
	opts Options
	res  *Result
}

func (r *runner) kernelCounts(name string) *KernelCounts {
	kc := r.res.PerKernel[name]
	if kc == nil {
		kc = &KernelCounts{}
		r.res.PerKernel[name] = kc
	}
	return kc
}

// ctaEnv is the exec.Env of one CTA during functional execution.
type ctaEnv struct {
	r       *runner
	params  []uint32
	regs    []uint32 // threads × NumRegs
	preds   []uint8  // threads × 1 bitfield of 7 predicates
	numRegs int
	smem    []byte

	blockX, blockY int
	ctaX, ctaY     int
	gridX, gridY   int
	warpBase       int // thread index of lane 0 of the current warp
	curInstr       *isa.Instr
}

func (e *ctaEnv) thread(lane int) int { return e.warpBase + lane }

func (e *ctaEnv) ReadReg(lane int, reg isa.Reg) uint32 {
	slot := e.thread(lane)*e.numRegs + int(reg)
	if tr := e.r.opts.RegTrace; tr != nil {
		tr.OnRegRead(slot, e.r.res.DynInstrs)
	}
	v := e.regs[slot]
	if inj := e.r.opts.Inject; inj != nil && inj.Mode == InjectUse {
		if e.r.res.UseCands == inj.Index {
			v ^= 1 << (inj.Bit & 31)
		}
		e.r.res.UseCands++
	} else if e.r.opts.CollectWindows {
		e.r.res.UseCands++
	}
	return v
}

func (e *ctaEnv) WriteReg(lane int, reg isa.Reg, v uint32) {
	inj := e.r.opts.Inject
	if inj != nil {
		switch inj.Mode {
		case InjectDst:
			if e.r.res.DstCands == inj.Index {
				v ^= 1 << (inj.Bit & 31)
			}
		case InjectDstLoad:
			if e.curInstr != nil && e.curInstr.IsLoad() && e.r.res.LoadCands == inj.Index {
				v ^= 1 << (inj.Bit & 31)
			}
		}
	}
	e.r.res.DstCands++
	if e.curInstr != nil && e.curInstr.IsLoad() {
		e.r.res.LoadCands++
	}
	slot := e.thread(lane)*e.numRegs + int(reg)
	if tr := e.r.opts.RegTrace; tr != nil {
		tr.OnRegWrite(slot, e.r.res.DynInstrs)
	}
	e.regs[slot] = v
}

func (e *ctaEnv) ReadPred(lane int, p isa.Pred) bool {
	return e.preds[e.thread(lane)]&(1<<(p-1)) != 0
}

func (e *ctaEnv) WritePred(lane int, p isa.Pred, v bool) {
	if v {
		e.preds[e.thread(lane)] |= 1 << (p - 1)
	} else {
		e.preds[e.thread(lane)] &^= 1 << (p - 1)
	}
}

func (e *ctaEnv) Special(lane int, s isa.SReg) uint32 {
	t := e.thread(lane)
	switch s {
	case isa.SRTidX:
		return uint32(t % e.blockX)
	case isa.SRTidY:
		return uint32(t / e.blockX)
	case isa.SRCtaIDX:
		return uint32(e.ctaX)
	case isa.SRCtaIDY:
		return uint32(e.ctaY)
	case isa.SRNTidX:
		return uint32(e.blockX)
	case isa.SRNTidY:
		return uint32(e.blockY)
	case isa.SRNCtaX:
		return uint32(e.gridX)
	case isa.SRNCtaY:
		return uint32(e.gridY)
	case isa.SRLaneID:
		return uint32(lane)
	}
	return 0
}

func (e *ctaEnv) Param(idx int) uint32 {
	if idx < 0 || idx >= len(e.params) {
		return 0
	}
	return e.params[idx]
}

func (e *ctaEnv) LoadGlobal(lane int, addr uint32, tex bool) (uint32, error) {
	return e.r.mem.Load4(addr)
}

func (e *ctaEnv) StoreGlobal(lane int, addr uint32, v uint32) error {
	return e.r.mem.Store4(addr, v)
}

func (e *ctaEnv) LoadShared(lane int, addr uint32) (uint32, error) {
	if addr%4 != 0 || int(addr)+4 > len(e.smem) {
		return 0, fmt.Errorf("illegal shared memory read at 0x%x", addr)
	}
	return le32(e.smem[addr:]), nil
}

func (e *ctaEnv) StoreShared(lane int, addr uint32, v uint32) error {
	if addr%4 != 0 || int(addr)+4 > len(e.smem) {
		return fmt.Errorf("illegal shared memory write at 0x%x", addr)
	}
	putLE32(e.smem[addr:], v)
	return nil
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLE32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// launch executes one kernel launch: every CTA of every replica, each CTA's
// warps stepped round-robin to honour barriers.
func (r *runner) launch(l *device.Launch) error {
	prog := l.Kernel
	kc := r.kernelCounts(l.Name())
	dstStart, loadStart, useStart := r.res.DstCands, r.res.LoadCands, r.res.UseCands

	threads := l.ThreadsPerCTA()
	if threads == 0 || prog == nil {
		return fmt.Errorf("launch %s: empty configuration", l.Name())
	}
	for rep := 0; rep < l.NumReplicas(); rep++ {
		params := l.ParamsFor(rep)
		for cy := 0; cy < l.GridY; cy++ {
			for cx := 0; cx < l.GridX; cx++ {
				if err := r.runCTA(l, prog, params, cx, cy); err != nil {
					return err
				}
			}
		}
	}
	if r.opts.CollectWindows {
		kc.DstWindows = append(kc.DstWindows, Window{dstStart, r.res.DstCands})
		kc.LoadWindows = append(kc.LoadWindows, Window{loadStart, r.res.LoadCands})
		kc.UseWindows = append(kc.UseWindows, Window{useStart, r.res.UseCands})
	}
	return nil
}

func (r *runner) runCTA(l *device.Launch, prog *isa.Program, params []uint32, cx, cy int) error {
	threads := l.ThreadsPerCTA()
	if tr := r.opts.RegTrace; tr != nil {
		tr.OnCTAStart(threads, prog.NumRegs, r.res.DynInstrs)
		defer func() { tr.OnCTAEnd(r.res.DynInstrs) }()
	}
	env := &ctaEnv{
		r:       r,
		params:  params,
		regs:    make([]uint32, threads*prog.NumRegs),
		preds:   make([]uint8, threads),
		numRegs: prog.NumRegs,
		smem:    make([]byte, l.SmemBytes),
		blockX:  l.BlockX, blockY: l.BlockY,
		ctaX: cx, ctaY: cy,
		gridX: l.GridX, gridY: l.GridY,
	}
	nWarps := (threads + 31) / 32
	warps := make([]*exec.Warp, nWarps)
	atBar := make([]bool, nWarps)
	done := make([]bool, nWarps)
	for w := range warps {
		lanes := threads - w*32
		if lanes > 32 {
			lanes = 32
		}
		warps[w] = exec.NewWarp(lanes)
	}
	kc := r.kernelCounts(l.Name())

	remaining := nWarps
	for remaining > 0 {
		progress := false
		for w := 0; w < nWarps; w++ {
			if done[w] || atBar[w] {
				continue
			}
			env.warpBase = w * 32
			// Run the warp until it exits, faults, or hits a barrier.
			for {
				env.curInstr = warps[w].PeekInstr(prog)
				info := exec.Step(warps[w], prog, env)
				if info.Kind == exec.StepOK || info.Kind == exec.StepExit || info.Kind == exec.StepBarrier {
					n := int64(popcount(info.ActiveMask))
					r.res.DynInstrs += n
					kc.DynInstrs += n
					if r.opts.MaxDynInstrs > 0 && r.res.DynInstrs > r.opts.MaxDynInstrs {
						return errTimeout
					}
				}
				switch info.Kind {
				case exec.StepFault:
					return info.Fault
				case exec.StepExit:
					done[w] = true
					remaining--
					progress = true
				case exec.StepBarrier:
					atBar[w] = true
					progress = true
				default:
					progress = true
					continue
				}
				break
			}
		}
		// Release the barrier when every live warp has arrived.
		if remaining > 0 {
			all := true
			for w := 0; w < nWarps; w++ {
				if !done[w] && !atBar[w] {
					all = false
					break
				}
			}
			if all {
				for w := 0; w < nWarps; w++ {
					if !done[w] {
						atBar[w] = false
						warps[w].AdvancePastBarrier()
					}
				}
				progress = true
			}
		}
		if !progress {
			return fmt.Errorf("CTA (%d,%d) deadlocked", cx, cy)
		}
	}
	return nil
}

func popcount(m uint32) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
