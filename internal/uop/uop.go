// Package uop lowers isa programs into pre-decoded µop records for the
// simulator's fast interpreter. The decode-and-switch in exec.Step pays for
// operand resolution (BImm vs register, RZ special-casing, guard predicate
// lookup, latency classification) on every warp-cycle; Compile pays it once
// per static instruction and emits a flat record whose Kind is a dense
// dispatch index into the executor's handler table.
//
// Compiled programs carry a pointer back to the source program so the
// executor can keep reporting *isa.Instr in StepInfo (the stats and trace
// layers key off the architectural instruction, not the µop). Compilation is
// total over the ISA: an unknown opcode makes Compile fail, and Cached then
// records the program as uncompilable so callers fall back to the reference
// interpreter, which reproduces the exact "unimplemented opcode" fault.
package uop

import (
	"fmt"
	"sync"

	"gpurel/internal/isa"
)

// Kind is the dense dispatch index of a µop. Register/immediate variants of
// the same architectural op get distinct kinds so handlers read their second
// operand without a per-lane branch.
type Kind uint8

// Dispatch kinds. Control kinds (KNop..KBar, KDrop) are handled inline by
// the executor; the rest index its data-op handler table.
const (
	KNop Kind = iota
	KExit
	KBra
	KBar
	// KDrop is a data op whose architectural effect is provably nil (an
	// ALU/SFU op writing RZ, or a SETP writing PT). It still occupies its
	// issue slot and latency class.
	KDrop

	KS2R
	KMov
	KMovImm
	KLdc

	KIAdd
	KIAddImm
	KISub
	KISubImm
	KIMul
	KIMulImm
	KIMad
	KIMadImm
	KIScAdd
	KIMin
	KIMinImm
	KIMax
	KIMaxImm
	KShl
	KShlImm
	KShr
	KShrImm
	KAnd
	KAndImm
	KOr
	KOrImm
	KXor
	KXorImm

	KFAdd
	KFAddImm
	KFSub
	KFSubImm
	KFMul
	KFMulImm
	KFFma
	KFFmaImm
	KFMin
	KFMinImm
	KFMax
	KFMaxImm
	KMufu

	KI2F
	KF2I

	KISetp
	KISetpImm
	KFSetp
	KFSetpImm
	KSel
	KSelImm

	KLdg
	KLdt
	KStg
	KLds
	KSts

	NumKinds
)

// Class is the latency class of a µop, matching the simulator's scoreboard
// buckets.
type Class uint8

// Latency classes.
const (
	ClassALU Class = iota
	ClassSFU
	ClassSMem
	ClassGMem
)

// Op is one pre-decoded µop. Register operands are architectural register
// numbers resolved to int16 with -1 standing for RZ (reads as zero, writes
// discarded); predicate operands are resolved to the bit each occupies in
// the per-thread predicate byte (0 = PT). Handlers for kinds that cannot
// carry RZ/PT (enforced by Compile) skip the check entirely.
type Op struct {
	Kind  Kind
	Class Class

	// Guard predicate: bit in the predicate byte (0 = unguarded PT).
	// GuardNeg with GuardBit 0 is the degenerate "@!PT" guard: a constant
	// false, the µop never executes any lane.
	GuardBit uint8
	GuardNeg bool

	PDstBit uint8 // SETP destination bit (0 = PT: discard)
	CBit    uint8 // SETP combine predicate bit (0 = PT: true)
	CNeg    bool
	SelBit  uint8 // SEL predicate bit (0 = PT: true)
	SelNeg  bool

	Sh      uint8 // ISCADD shift amount, pre-masked to [0,31]
	Cmp     isa.CmpOp
	Mufu    isa.MufuOp
	Special isa.SReg

	A, B, C, Dst int16

	// Imm is the raw 32-bit immediate: the value for MOVI and *Imm ALU
	// kinds (float kinds hold IEEE bits), the parameter index for LDC, and
	// the address offset for memory kinds.
	Imm uint32

	Target, Reconv int32 // BRA only
}

// Program is a compiled program: one µop per source instruction, same PCs.
type Program struct {
	// Src is the source program; Src.Code[pc] is the architectural
	// instruction behind Ops[pc].
	Src *isa.Program
	Ops []Op
}

func reg(r isa.Reg) int16 {
	if r == isa.RZ {
		return -1
	}
	return int16(r)
}

func predBit(p isa.Pred) uint8 {
	if p == isa.PT {
		return 0
	}
	return 1 << (p - 1)
}

func latClass(op isa.Op) Class {
	switch op {
	case isa.OpMUFU:
		return ClassSFU
	case isa.OpLDS, isa.OpSTS:
		return ClassSMem
	case isa.OpLDG, isa.OpSTG, isa.OpLDT:
		return ClassGMem
	default:
		return ClassALU
	}
}

// immKind maps a register-register kind to its immediate variant.
func immKind(k Kind, bimm bool) Kind {
	if !bimm {
		return k
	}
	return k + 1 // *Imm kinds immediately follow their register variant
}

// Compile lowers p into a µop program. It fails on opcodes the executor does
// not implement; callers must then fall back to the reference interpreter.
func Compile(p *isa.Program) (*Program, error) {
	cp := &Program{Src: p, Ops: make([]Op, len(p.Code))}
	for pc := range p.Code {
		ins := &p.Code[pc]
		u := &cp.Ops[pc]
		u.Class = latClass(ins.Op)
		u.GuardBit = predBit(ins.Pred)
		u.GuardNeg = ins.PredNeg
		u.A = reg(ins.SrcA)
		u.B = reg(ins.SrcB)
		u.C = reg(ins.SrcC)
		u.Dst = reg(ins.Dst)
		u.Imm = uint32(ins.Imm)

		switch ins.Op {
		case isa.OpNOP:
			u.Kind = KNop
		case isa.OpEXIT:
			u.Kind = KExit
		case isa.OpBRA:
			u.Kind = KBra
			u.Target = int32(ins.Target)
			u.Reconv = int32(ins.Reconv)
		case isa.OpBAR:
			u.Kind = KBar

		case isa.OpS2R:
			u.Kind = KS2R
			u.Special = ins.Special
		case isa.OpMOV:
			u.Kind = KMov
		case isa.OpMOVI:
			u.Kind = KMovImm
		case isa.OpLDC:
			u.Kind = KLdc

		case isa.OpIADD:
			u.Kind = immKind(KIAdd, ins.BImm)
		case isa.OpISUB:
			u.Kind = immKind(KISub, ins.BImm)
		case isa.OpIMUL:
			u.Kind = immKind(KIMul, ins.BImm)
		case isa.OpIMAD:
			u.Kind = immKind(KIMad, ins.BImm)
		case isa.OpISCADD:
			// reads SrcB as a register regardless of BImm, like the
			// reference interpreter
			u.Kind = KIScAdd
			u.Sh = ins.Imm2 & 31
		case isa.OpIMIN:
			u.Kind = immKind(KIMin, ins.BImm)
		case isa.OpIMAX:
			u.Kind = immKind(KIMax, ins.BImm)
		case isa.OpSHL:
			u.Kind = immKind(KShl, ins.BImm)
		case isa.OpSHR:
			u.Kind = immKind(KShr, ins.BImm)
		case isa.OpAND:
			u.Kind = immKind(KAnd, ins.BImm)
		case isa.OpOR:
			u.Kind = immKind(KOr, ins.BImm)
		case isa.OpXOR:
			u.Kind = immKind(KXor, ins.BImm)

		case isa.OpFADD:
			u.Kind = immKind(KFAdd, ins.BImm)
		case isa.OpFSUB:
			u.Kind = immKind(KFSub, ins.BImm)
		case isa.OpFMUL:
			u.Kind = immKind(KFMul, ins.BImm)
		case isa.OpFFMA:
			u.Kind = immKind(KFFma, ins.BImm)
		case isa.OpFMIN:
			u.Kind = immKind(KFMin, ins.BImm)
		case isa.OpFMAX:
			u.Kind = immKind(KFMax, ins.BImm)
		case isa.OpMUFU:
			u.Kind = KMufu
			u.Mufu = ins.Mufu

		case isa.OpI2F:
			u.Kind = KI2F
		case isa.OpF2I:
			u.Kind = KF2I

		case isa.OpISETP:
			u.Kind = immKind(KISetp, ins.BImm)
			u.Cmp = ins.Cmp
			u.PDstBit = predBit(ins.PDst)
			u.CBit = predBit(ins.CPred)
			u.CNeg = ins.CPredNeg
		case isa.OpFSETP:
			u.Kind = immKind(KFSetp, ins.BImm)
			u.Cmp = ins.Cmp
			u.PDstBit = predBit(ins.PDst)
			u.CBit = predBit(ins.CPred)
			u.CNeg = ins.CPredNeg
		case isa.OpSEL:
			u.Kind = immKind(KSel, ins.BImm)
			u.SelBit = predBit(ins.SelPred)
			u.SelNeg = ins.SelPredNeg

		case isa.OpLDG:
			u.Kind = KLdg
		case isa.OpLDT:
			u.Kind = KLdt
		case isa.OpSTG:
			u.Kind = KStg
		case isa.OpLDS:
			u.Kind = KLds
		case isa.OpSTS:
			u.Kind = KSts

		default:
			return nil, fmt.Errorf("uop: unimplemented opcode %v at pc %d", ins.Op, pc)
		}

		// Architectural no-ops: pure register ops writing RZ and SETPs
		// writing PT keep their latency class but need no handler. Memory
		// ops are never dropped (loads can fault, stores have effects).
		switch u.Kind {
		case KS2R, KMov, KMovImm, KLdc,
			KIAdd, KIAddImm, KISub, KISubImm, KIMul, KIMulImm, KIMad, KIMadImm,
			KIScAdd, KIMin, KIMinImm, KIMax, KIMaxImm,
			KShl, KShlImm, KShr, KShrImm, KAnd, KAndImm, KOr, KOrImm, KXor, KXorImm,
			KFAdd, KFAddImm, KFSub, KFSubImm, KFMul, KFMulImm, KFFma, KFFmaImm,
			KFMin, KFMinImm, KFMax, KFMaxImm, KMufu, KI2F, KF2I, KSel, KSelImm:
			if u.Dst < 0 {
				u.Kind = KDrop
			}
		case KISetp, KISetpImm, KFSetp, KFSetpImm:
			if u.PDstBit == 0 {
				u.Kind = KDrop
			}
		}
	}
	return cp, nil
}

// cache maps *isa.Program to its compiled form; a stored nil marks the
// program as uncompilable. Keying on the pointer is sound because programs
// are immutable after construction and shared across all replicas of a job.
var cache sync.Map

// Cached returns the compiled form of p, compiling and memoizing on first
// use. It returns nil when p cannot be compiled; callers must then use the
// reference interpreter.
func Cached(p *isa.Program) *Program {
	if v, ok := cache.Load(p); ok {
		return v.(*Program)
	}
	cp, err := Compile(p)
	if err != nil {
		cp = nil
	}
	v, _ := cache.LoadOrStore(p, cp)
	return v.(*Program)
}
