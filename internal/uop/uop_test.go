package uop_test

import (
	"testing"

	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/uop"
)

// TestCompileAllKernels: compilation is total over the shipped ISA — every
// kernel of every benchmark application lowers with one µop per source
// instruction and a well-formed dispatch kind.
func TestCompileAllKernels(t *testing.T) {
	seen := map[*isa.Program]bool{}
	for _, app := range kernels.All() {
		job := app.Build()
		for _, step := range job.Steps {
			if step.Launch == nil || seen[step.Launch.Kernel] {
				continue
			}
			prog := step.Launch.Kernel
			seen[prog] = true
			cp, err := uop.Compile(prog)
			if err != nil {
				t.Errorf("%s/%s: %v", app.Name, prog.Name, err)
				continue
			}
			if cp.Src != prog {
				t.Errorf("%s/%s: compiled program lost its source pointer", app.Name, prog.Name)
			}
			if len(cp.Ops) != len(prog.Code) {
				t.Errorf("%s/%s: %d µops for %d instructions", app.Name, prog.Name, len(cp.Ops), len(prog.Code))
			}
			for pc := range cp.Ops {
				if cp.Ops[pc].Kind >= uop.NumKinds {
					t.Errorf("%s/%s: pc %d: bad kind %d", app.Name, prog.Name, pc, cp.Ops[pc].Kind)
				}
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no kernels compiled")
	}
}

// TestCachedMemoizes: Cached compiles once per program pointer and hands the
// same compiled object back on every subsequent call.
func TestCachedMemoizes(t *testing.T) {
	p := &isa.Program{
		Name:    "memo",
		NumRegs: 2,
		Code: []isa.Instr{
			{Op: isa.OpMOVI, Dst: 0, Imm: 7},
			{Op: isa.OpEXIT},
		},
	}
	first := uop.Cached(p)
	if first == nil {
		t.Fatal("compilable program cached as nil")
	}
	if again := uop.Cached(p); again != first {
		t.Error("second lookup returned a different compiled program")
	}
}

// TestCachedUncompilable: a program with an opcode outside the ISA is
// memoized as nil so every caller falls back to the reference interpreter.
func TestCachedUncompilable(t *testing.T) {
	p := &isa.Program{
		Name:    "bad",
		NumRegs: 1,
		Code:    []isa.Instr{{Op: isa.Op(200)}, {Op: isa.OpEXIT}},
	}
	if _, err := uop.Compile(p); err == nil {
		t.Fatal("unknown opcode compiled")
	}
	for i := 0; i < 2; i++ {
		if uop.Cached(p) != nil {
			t.Fatalf("lookup %d: uncompilable program not cached as nil", i)
		}
	}
}

// TestDropLowering: architecturally-null ops lower to KDrop — they keep
// their issue slot and latency class but need no handler — while memory
// ops are never dropped (loads can fault, stores have effects).
func TestDropLowering(t *testing.T) {
	cases := []struct {
		name string
		ins  isa.Instr
		want uop.Kind
	}{
		{"alu-to-rz", isa.Instr{Op: isa.OpIADD, Dst: isa.RZ, SrcA: 0, SrcB: 1}, uop.KDrop},
		{"setp-to-pt", isa.Instr{Op: isa.OpISETP, PDst: isa.PT, SrcA: 0, SrcB: 1}, uop.KDrop},
		{"mov-to-rz", isa.Instr{Op: isa.OpMOV, Dst: isa.RZ, SrcA: 0}, uop.KDrop},
		{"load-to-rz", isa.Instr{Op: isa.OpLDG, Dst: isa.RZ, SrcA: 0}, uop.KLdg},
		{"store", isa.Instr{Op: isa.OpSTG, SrcA: 0, SrcB: 1}, uop.KStg},
		{"live-alu", isa.Instr{Op: isa.OpIADD, Dst: 0, SrcA: 0, SrcB: 1}, uop.KIAdd},
		{"live-alu-imm", isa.Instr{Op: isa.OpIADD, Dst: 0, SrcA: 0, BImm: true, Imm: 3}, uop.KIAddImm},
		{"live-setp", isa.Instr{Op: isa.OpISETP, PDst: isa.PT + 1, SrcA: 0, SrcB: 1}, uop.KISetp},
	}
	for _, c := range cases {
		p := &isa.Program{Name: c.name, NumRegs: 2, Code: []isa.Instr{c.ins, {Op: isa.OpEXIT}}}
		cp, err := uop.Compile(p)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if cp.Ops[0].Kind != c.want {
			t.Errorf("%s: kind %d, want %d", c.name, cp.Ops[0].Kind, c.want)
		}
	}
}
