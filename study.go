// Package gpurel reproduces "GPU Reliability Assessment: Insights Across the
// Abstraction Layers" (IEEE CLUSTER 2024): cross-layer AVF measurement on a
// cycle-level GPU microarchitecture simulator (the gpuFI-4/GPGPU-Sim
// analogue), software-level SVF measurement on a functional executor (the
// NVBitFI analogue), the 11-benchmark/23-kernel evaluation, thread-level TMR
// hardening, and the trend analyses behind every table and figure of the
// paper.
//
// Study is the entry point: it owns the chip configuration and campaign
// sizing, lazily builds and caches golden runs, and memoises every campaign
// so that figures sharing data (e.g. Figure 1 and Table I) measure it once.
package gpurel

import (
	"fmt"
	"math/rand"

	"sync"

	"gpurel/internal/ace"
	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/device"
	"gpurel/internal/faultmodel"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/harden"
	"gpurel/internal/kernels"
	"gpurel/internal/metrics"
	"gpurel/internal/microfi"
	"gpurel/internal/sim"
	"gpurel/internal/softfi"
)

// Study orchestrates the paper's measurements. The zero value is not usable;
// call NewStudy.
type Study struct {
	Cfg     gpu.Config
	Runs    int   // injections per campaign point
	Seed    int64 // base seed; campaigns derive per-run seeds from it
	Workers int   // parallel injection workers (0 = GOMAXPROCS)

	// RunPoint, when non-nil, executes campaign points instead of the local
	// campaign.Run — e.g. by submitting them to a gpureld daemon via the
	// client package's RunPoint hook. The options carry the fully derived
	// point seed (see PointSeed), so a remote executor — or a whole worker
	// fleet — reproduces the local tally bit for bit. Fleet sizing (lease
	// length, worker count) is execution policy, not part of the point
	// identity, and never feeds PointSeed. Memoisation still applies on top.
	RunPoint func(spec PointSpec, opts campaign.Options) (campaign.Tally, error)

	// Sampling, when non-nil, is the default adaptive sampling policy applied
	// to every campaign point that does not carry its own (PointSpec.Sampling
	// overrides it). nil keeps the paper's fixed-n methodology.
	Sampling *SamplingPolicy

	// Counters, when non-nil, accumulates sampling-efficiency statistics
	// (simulated runs, liveness prune hits, runs saved by early stopping)
	// across every campaign the study executes.
	Counters *adaptive.Counters

	// Checkpoint is the default checkpointed-injection spec applied when an
	// application's golden runs are first built (PointSpec.Checkpoint
	// overrides it for points evaluated before then). The zero value keeps
	// plain brute-force goldens. Like Sampling it tunes how points are
	// simulated, not what they measure: campaign tallies are bit-identical
	// either way (microfi.GoldenCheckpointed).
	Checkpoint microfi.CheckpointSpec

	mu    sync.Mutex
	apps  map[string]*AppEval
	micro map[microKey]campaign.Tally
	soft  map[softKey]campaign.Tally
}

// NewStudy returns a study over the default scaled-Volta chip.
func NewStudy(runs int, seed int64) *Study {
	return &Study{
		Cfg:   gpu.Volta(),
		Runs:  runs,
		Seed:  seed,
		apps:  map[string]*AppEval{},
		micro: map[microKey]campaign.Tally{},
		soft:  map[softKey]campaign.Tally{},
	}
}

// Apps returns the 11 benchmark applications in the paper's order.
func (s *Study) Apps() []kernels.App { return kernels.All() }

// AppEval is the cached per-application state: plain and hardened jobs with
// their golden runs on both simulators, plus (built on first pruned campaign)
// the register-file liveness maps of the golden runs.
type AppEval struct {
	App kernels.App

	Job       *device.Job
	MicroG    *microfi.GoldenRun
	SoftG     *softfi.GoldenRun
	JobTMR    *device.Job
	MicroGTMR *microfi.GoldenRun
	SoftGTMR  *softfi.GoldenRun

	liveOnce [2]sync.Once // [plain, hardened]
	live     [2]*ace.Liveness
	liveErr  [2]error

	staticOnce sync.Once
	static     *microfi.StaticIntervals
	staticErr  error

	selMu sync.Mutex
	sel   map[string]*selEval // selective variants, keyed by Set.Canonical()
}

// selEval is one cached selectively-hardened variant of an application:
// the harden.Selective job, its micro golden run, and (on first pruned
// campaign) its RF liveness map. Proper subsets only — the empty and full
// protection sets normalize to the plain and TMR states of AppEval.
type selEval struct {
	once sync.Once
	Job  *device.Job
	G    *microfi.GoldenRun
	err  error

	liveOnce sync.Once
	live     *ace.Liveness
	liveErr  error
}

// selective returns (building and caching on first use) the selectively
// hardened variant of the application for a canonical protection set.
func (e *AppEval) selective(cfg gpu.Config, ck microfi.CheckpointSpec, set harden.Set) (*selEval, error) {
	key := set.Canonical()
	e.selMu.Lock()
	if e.sel == nil {
		e.sel = map[string]*selEval{}
	}
	se, ok := e.sel[key]
	if !ok {
		se = &selEval{}
		e.sel[key] = se
	}
	e.selMu.Unlock()
	se.once.Do(func() {
		se.Job = harden.Selective(e.Job, set)
		se.G, se.err = microfi.GoldenCheckpointed(se.Job, cfg, ck)
	})
	if se.err != nil {
		return nil, fmt.Errorf("%s+SEL(%s): %w", e.App.Name, key, se.err)
	}
	return se, nil
}

// liveness traces (once) the RF liveness map of the selective golden run.
func (se *selEval) liveness(cfg gpu.Config) (*ace.Liveness, error) {
	se.liveOnce.Do(func() {
		se.live, se.liveErr = ace.TraceRF(se.Job, cfg)
	})
	return se.live, se.liveErr
}

// liveness returns (tracing on first use) the RF liveness map of the plain or
// hardened golden run.
func (e *AppEval) liveness(cfg gpu.Config, hardened bool) (*ace.Liveness, error) {
	i, job := 0, e.Job
	if hardened {
		i, job = 1, e.JobTMR
	}
	e.liveOnce[i].Do(func() {
		e.live[i], e.liveErr[i] = ace.TraceRF(job, cfg)
	})
	return e.live[i], e.liveErr[i]
}

// staticIntervals traces (once) the static ACE-interval map of the plain
// job — one fault-free run, no injections; the advisor's zero-cost
// pre-ranking stage reads its static AVF bounds.
func (e *AppEval) staticIntervals(cfg gpu.Config) (*microfi.StaticIntervals, error) {
	e.staticOnce.Do(func() {
		e.static, e.staticErr = microfi.TraceStatic(e.Job, cfg)
	})
	return e.static, e.staticErr
}

type microKey struct {
	app, kernel string
	structure   gpu.Structure
	hardened    bool
	fault       string // faultmodel.Spec.Canonical(); "" = transient single-bit
	harden      string // harden.Set.Canonical(); "" = no selective protection
}

type softKey struct {
	app, kernel string
	mode        softfi.Mode
	hardened    bool
}

// Layer selects which injector a campaign point runs on.
type Layer string

const (
	// LayerMicro is the cross-layer path: bit flips in the raw storage
	// arrays of the cycle-level simulator (the gpuFI-4 analogue).
	LayerMicro Layer = "micro"
	// LayerSoft is the software-only path: instruction-level injection on
	// the functional executor (the NVBitFI analogue).
	LayerSoft Layer = "soft"
)

// SamplingPolicy selects the adaptive sampling strategy of a campaign point.
// The zero value (and a nil pointer) is the paper's fixed-n design.
type SamplingPolicy struct {
	// Margin enables sequential early stopping at the given target
	// Wilson-score 99% CI half-width on the failure rate (<= 0 disables it).
	Margin float64
	// Batch is the run-index granularity of the stop rule
	// (0 = adaptive.DefaultBatch).
	Batch int
	// Prune enables liveness-guided pruning of register-file injections:
	// provably-dead sites classify as Masked from the golden run's liveness
	// map instead of being simulated. Classifications are bit-identical to
	// brute force (microfi.InjectPruned).
	Prune bool
}

// Policy converts the point-level knobs to the engine's stopping policy.
func (p *SamplingPolicy) Policy() adaptive.Policy {
	if p == nil {
		return adaptive.Policy{}
	}
	return adaptive.Policy{Margin: p.Margin, Batch: p.Batch}
}

// PointSpec identifies one campaign point — the unit of work the campaign
// scheduler (internal/service) accepts, checkpoints and resumes. Structure
// is meaningful only for LayerMicro, Mode only for LayerSoft.
//
// Sampling tunes how the point is sampled, not what it measures: it is
// deliberately excluded from PointSeed, so an adaptive campaign draws the
// exact same per-run experiments as the fixed-n campaign it truncates.
type PointSpec struct {
	Layer     Layer
	App       string
	Kernel    string
	Structure gpu.Structure
	Mode      softfi.Mode
	Hardened  bool
	Sampling  *SamplingPolicy
	// Checkpoint, when non-nil, overrides the study's default checkpointed
	// injection spec for the golden runs backing this point. Like Sampling
	// it is excluded from PointSeed — it accelerates the point without
	// changing what it measures. Golden runs are built once per app, so the
	// spec in effect at the first evaluation of an app wins.
	Checkpoint *microfi.CheckpointSpec
	// Fault selects the fault model of a LayerMicro point (nil = the legacy
	// transient single-bit flip). Unlike Sampling and Checkpoint it changes
	// WHAT the point measures, so every non-default spec feeds PointSeed;
	// the default contributes nothing, keeping historical seeds intact.
	Fault *faultmodel.Spec
	// Harden names the protected kernel subset of a selective-hardening
	// point (LayerMicro): the campaign injects into harden.Selective(job,
	// set) instead of the plain or fully-TMR'd job. Mutually exclusive with
	// Hardened. Like Fault it changes what the point measures, so a
	// non-empty set feeds PointSeed; study entry points normalize the empty
	// set to the plain job and a set covering every kernel to Hardened=true,
	// so those boundary points share seeds and memo entries with the legacy
	// campaigns (the harden.Selective bit-identity property).
	Harden []string
}

// hardenSet returns the point's protection set in canonical form.
func (p PointSpec) hardenSet() harden.Set { return harden.NewSet(p.Harden...) }

// faultSpec returns the point's fault spec with nil meaning the default.
func (p PointSpec) faultSpec() faultmodel.Spec {
	if p.Fault == nil {
		return faultmodel.Spec{}
	}
	return *p.Fault
}

// PointSeed derives the campaign seed of a point from a base seed, exactly
// as Study's memoised tallies always have: base + FNV-1a of the point's
// identity string. Run i of the point then uses rand.NewSource(seed+i)
// (campaign.RunRange), which is what makes points resumable anywhere.
func PointSeed(base int64, spec PointSpec) int64 {
	switch spec.Layer {
	case LayerSoft:
		return base + int64(hashKey(fmt.Sprintf("soft|%s|%s|%d|%v", spec.App, spec.Kernel, spec.Mode, spec.Hardened)))
	default:
		id := fmt.Sprintf("micro|%s|%s|%d|%v", spec.App, spec.Kernel, spec.Structure, spec.Hardened)
		// The fault model is part of the point's identity — it changes what
		// is measured — but the default (transient single-bit) is appended as
		// nothing at all, so seeds of every pre-fault-model campaign are
		// unchanged and historical tallies remain reproducible.
		if c := spec.faultSpec().Canonical(); c != "" {
			id += "|fault=" + c
		}
		// Likewise for selective hardening: a proper protection subset is a
		// new point identity, while the boundary sets are normalized away
		// before seeding and so contribute nothing here.
		if c := spec.hardenSet().Canonical(); c != "" {
			id += "|harden=" + c
		}
		return base + int64(hashKey(id))
	}
}

// PointExperiment builds (caching golden runs on first use) the injection
// closure of one campaign point. The returned Experiment is safe for
// concurrent calls and deterministic per (run, rng) — the entry point the
// campaign service schedules run-ranges against.
func (s *Study) PointExperiment(spec PointSpec) (campaign.Experiment, error) {
	ck := s.Checkpoint
	if spec.Checkpoint != nil {
		ck = *spec.Checkpoint
	}
	e, err := s.evalWith(spec.App, ck)
	if err != nil {
		return nil, err
	}
	switch spec.Layer {
	case LayerMicro:
		fspec := spec.faultSpec()
		if err := fspec.ValidateFor(spec.Structure); err != nil {
			return nil, err
		}
		mdl, err := fspec.Build()
		if err != nil {
			return nil, err
		}
		job, g := e.Job, e.MicroG
		includeVote := spec.Hardened
		liveness := func() (*ace.Liveness, error) { return e.liveness(s.Cfg, spec.Hardened) }
		switch {
		case len(spec.Harden) > 0:
			if spec.Hardened {
				return nil, fmt.Errorf("point mixes hardened with a selective protection set")
			}
			set := spec.hardenSet()
			if set.Covers(e.Job) {
				// Full-set selective = TMR, bit for bit; share its golden.
				job, g, includeVote = e.JobTMR, e.MicroGTMR, true
				liveness = func() (*ace.Liveness, error) { return e.liveness(s.Cfg, true) }
				break
			}
			se, err := e.selective(s.Cfg, ck, set)
			if err != nil {
				return nil, err
			}
			// The vote belongs to the protected kernels' workflow: its
			// windows count toward a kernel exactly when that kernel is in
			// the protection set.
			job, g, includeVote = se.Job, se.G, set.Has(spec.Kernel)
			liveness = func() (*ace.Liveness, error) { return se.liveness(s.Cfg) }
		case spec.Hardened:
			job, g = e.JobTMR, e.MicroGTMR
		}
		t := microfi.Target{Structure: spec.Structure, Kernel: spec.Kernel, IncludeVote: includeVote}
		if spec.Sampling != nil && spec.Sampling.Prune && spec.Structure == gpu.RF {
			lv, err := liveness()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", spec.App, err)
			}
			return s.Counters.Instrument(func(run int, rng *rand.Rand) (faults.Result, bool) {
				return microfi.InjectPrunedModel(job, g, lv, t, mdl, rng)
			}), nil
		}
		return s.Counters.Count(func(run int, rng *rand.Rand) faults.Result {
			return microfi.InjectModel(job, g, t, mdl, rng)
		}), nil
	case LayerSoft:
		if !spec.faultSpec().IsDefault() {
			return nil, fmt.Errorf("fault models apply to the micro layer only")
		}
		if len(spec.Harden) > 0 {
			return nil, fmt.Errorf("selective hardening applies to the micro layer only")
		}
		job, g := e.Job, e.SoftG
		if spec.Hardened {
			job, g = e.JobTMR, e.SoftGTMR
		}
		t := softfi.Target{Kernel: spec.Kernel, Mode: spec.Mode, IncludeVote: spec.Hardened}
		return s.Counters.Count(func(run int, rng *rand.Rand) faults.Result {
			return softfi.Inject(job, g, t, rng)
		}), nil
	default:
		return nil, fmt.Errorf("unknown campaign layer %q", spec.Layer)
	}
}

// runPoint executes (locally or through the RunPoint hook) one campaign
// point with the study's sizing, the point's derived seed and the effective
// sampling policy (the point's own, else the study default).
func (s *Study) runPoint(spec PointSpec) (campaign.Tally, error) {
	if spec.Sampling == nil {
		spec.Sampling = s.Sampling
	}
	if spec.Checkpoint == nil && s.Checkpoint.Enabled() {
		// Propagate the study default into the spec so a RunPoint hook
		// (e.g. the gpureld daemon) accelerates the point the same way.
		ck := s.Checkpoint
		spec.Checkpoint = &ck
	}
	opts := campaign.Options{Runs: s.Runs, Seed: PointSeed(s.Seed, spec), Workers: s.Workers}
	if s.RunPoint != nil {
		return s.RunPoint(spec, opts)
	}
	fn, err := s.PointExperiment(spec)
	if err != nil {
		return campaign.Tally{}, err
	}
	if pol := spec.Sampling.Policy(); pol.Margin > 0 {
		res := adaptive.Run(opts, pol, fn)
		if s.Counters != nil {
			s.Counters.Saved.Add(int64(res.Saved))
		}
		return res.Tally, nil
	}
	return campaign.Run(opts, fn), nil
}

// Eval returns (building and caching on first use) the evaluation state of
// the named application, using the study's default checkpoint spec.
func (s *Study) Eval(appName string) (*AppEval, error) {
	return s.evalWith(appName, s.Checkpoint)
}

// evalWith is Eval with an explicit checkpoint spec for the micro-level
// golden runs. Evaluations are cached per app, so the spec only matters the
// first time an app is evaluated.
func (s *Study) evalWith(appName string, ck microfi.CheckpointSpec) (*AppEval, error) {
	s.mu.Lock()
	if e, ok := s.apps[appName]; ok {
		s.mu.Unlock()
		return e, nil
	}
	s.mu.Unlock()

	app, err := kernels.ByName(appName)
	if err != nil {
		return nil, err
	}
	e := &AppEval{App: app, Job: app.Build()}
	if e.MicroG, err = microfi.GoldenCheckpointed(e.Job, s.Cfg, ck); err != nil {
		return nil, fmt.Errorf("%s: %w", appName, err)
	}
	if e.SoftG, err = softfi.Golden(e.Job); err != nil {
		return nil, fmt.Errorf("%s: %w", appName, err)
	}
	e.JobTMR = harden.TMR(e.Job)
	if e.MicroGTMR, err = microfi.GoldenCheckpointed(e.JobTMR, s.Cfg, ck); err != nil {
		return nil, fmt.Errorf("%s+TMR: %w", appName, err)
	}
	if e.SoftGTMR, err = softfi.Golden(e.JobTMR); err != nil {
		return nil, fmt.Errorf("%s+TMR: %w", appName, err)
	}

	s.mu.Lock()
	s.apps[appName] = e
	s.mu.Unlock()
	return e, nil
}

// CheckpointCounts aggregates fork/converge statistics and the snapshot
// inventory across every cached golden run (plain and TMR-hardened). Safe to
// call concurrently with running campaigns.
func (s *Study) CheckpointCounts() microfi.CheckpointCounts {
	s.mu.Lock()
	defer s.mu.Unlock()
	var c microfi.CheckpointCounts
	for _, e := range s.apps {
		if e.MicroG != nil {
			c.Add(e.MicroG.CheckpointCounts())
		}
		if e.MicroGTMR != nil {
			c.Add(e.MicroGTMR.CheckpointCounts())
		}
	}
	return c
}

// MicroTally runs (or recalls) the microarchitecture-level campaign for one
// (app, kernel, structure) point and returns the tally plus the derating
// factor of the target.
func (s *Study) MicroTally(appName, kernel string, st gpu.Structure, hardened bool) (campaign.Tally, float64, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return campaign.Tally{}, 0, err
	}
	g := e.MicroG
	if hardened {
		g = e.MicroGTMR
	}
	t := microfi.Target{Structure: st, Kernel: kernel, IncludeVote: hardened}
	key := microKey{app: appName, kernel: kernel, structure: st, hardened: hardened}

	s.mu.Lock()
	tl, ok := s.micro[key]
	s.mu.Unlock()
	if !ok {
		tl, err = s.runPoint(PointSpec{Layer: LayerMicro, App: appName, Kernel: kernel, Structure: st, Hardened: hardened})
		if err != nil {
			return campaign.Tally{}, 0, err
		}
		s.mu.Lock()
		s.micro[key] = tl
		s.mu.Unlock()
	}
	return tl, t.DF(g), nil
}

// SoftTally runs (or recalls) the software-level campaign for one
// (app, kernel, mode) point.
func (s *Study) SoftTally(appName, kernel string, mode softfi.Mode, hardened bool) (campaign.Tally, error) {
	if _, err := s.Eval(appName); err != nil {
		return campaign.Tally{}, err
	}
	key := softKey{appName, kernel, mode, hardened}

	s.mu.Lock()
	tl, ok := s.soft[key]
	s.mu.Unlock()
	if !ok {
		var err error
		tl, err = s.runPoint(PointSpec{Layer: LayerSoft, App: appName, Kernel: kernel, Mode: mode, Hardened: hardened})
		if err != nil {
			return campaign.Tally{}, err
		}
		s.mu.Lock()
		s.soft[key] = tl
		s.mu.Unlock()
	}
	return tl, nil
}

func hashKey(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// KernelAVF measures the full-chip cross-layer AVF of one kernel: one
// campaign per hardware structure, derated, consolidated by structure bit
// counts (§II-B).
func (s *Study) KernelAVF(appName, kernel string, hardened bool) (metrics.Breakdown, []metrics.StructAVF, error) {
	var structs []metrics.StructAVF
	for _, st := range gpu.Structures {
		tl, df, err := s.MicroTally(appName, kernel, st, hardened)
		if err != nil {
			return metrics.Breakdown{}, nil, err
		}
		structs = append(structs, metrics.NewStructAVF(st, tl, df))
	}
	return metrics.ChipAVF(s.Cfg, structs), structs, nil
}

// KernelAVFStratified measures the same full-chip AVF as KernelAVF but
// treats the five hardware structures as strata of one sampling budget:
// after a pilot, Neyman allocation concentrates the remaining runs on the
// structures with the highest weighted failure-rate variance (weights are
// the structures' shares of the chip's storage bits — the same weights
// metrics.ChipAVF recombines with, so precision is spent where it moves the
// chip AVF most). Per-structure tallies are deterministic prefixes of the
// corresponding fixed-n campaigns and are cached, so later MicroTally calls
// for these points reuse them. Liveness pruning of RF runs follows the
// study's Sampling policy.
func (s *Study) KernelAVFStratified(appName, kernel string, hardened bool, pol adaptive.StratifiedPolicy) (metrics.Breakdown, []metrics.StructAVF, []adaptive.StratumResult, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return metrics.Breakdown{}, nil, nil, err
	}
	g := e.MicroG
	if hardened {
		g = e.MicroGTMR
	}
	sampling := &SamplingPolicy{Margin: pol.Margin, Batch: pol.Batch}
	if s.Sampling != nil {
		sampling.Prune = s.Sampling.Prune
	}
	var strata []adaptive.Stratum
	for _, st := range gpu.Structures {
		spec := PointSpec{Layer: LayerMicro, App: appName, Kernel: kernel, Structure: st, Hardened: hardened, Sampling: sampling}
		fn, err := s.PointExperiment(spec)
		if err != nil {
			return metrics.Breakdown{}, nil, nil, err
		}
		strata = append(strata, adaptive.Stratum{
			Name:   st.String(),
			Weight: float64(s.Cfg.StructBits(st)),
			Opts:   campaign.Options{Runs: s.Runs, Seed: PointSeed(s.Seed, spec), Workers: s.Workers},
			Fn:     fn,
		})
	}
	results := adaptive.Stratified(strata, pol)

	var structs []metrics.StructAVF
	s.mu.Lock()
	for i, st := range gpu.Structures {
		tl := results[i].Tally
		s.micro[microKey{app: appName, kernel: kernel, structure: st, hardened: hardened}] = tl
		t := microfi.Target{Structure: st, Kernel: kernel, IncludeVote: hardened}
		structs = append(structs, metrics.NewStructAVF(st, tl, t.DF(g)))
		if s.Counters != nil {
			s.Counters.Saved.Add(int64(s.Runs - tl.N))
		}
	}
	s.mu.Unlock()
	return metrics.ChipAVF(s.Cfg, structs), structs, results, nil
}

// KernelSVF measures the SVF of one kernel.
func (s *Study) KernelSVF(appName, kernel string, hardened bool) (metrics.Breakdown, error) {
	tl, err := s.SoftTally(appName, kernel, softfi.SVF, hardened)
	if err != nil {
		return metrics.Breakdown{}, err
	}
	return metrics.FromTally(tl), nil
}

// kernelCycles returns the cycle weight of each kernel of an app (golden).
func kernelCycles(g *microfi.GoldenRun, kernel string) float64 {
	var c int64
	for _, sp := range g.Res.Spans {
		if sp.Kernel == kernel {
			c += sp.End - sp.Start
		}
	}
	return float64(c)
}

// AppAVF measures the application AVF: per-kernel AVFs weighted by kernel
// cycles (§II-B).
func (s *Study) AppAVF(appName string, hardened bool) (metrics.Breakdown, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return metrics.Breakdown{}, err
	}
	g := e.MicroG
	if hardened {
		g = e.MicroGTMR
	}
	var parts []metrics.Breakdown
	var weights []float64
	for _, k := range e.App.Kernels {
		b, _, err := s.KernelAVF(appName, k, hardened)
		if err != nil {
			return metrics.Breakdown{}, err
		}
		parts = append(parts, b)
		weights = append(weights, kernelCycles(g, k))
	}
	return metrics.Weighted(parts, weights), nil
}

// AppSVF measures the application SVF: per-kernel SVFs weighted by executed
// instruction counts (§II-C).
func (s *Study) AppSVF(appName string, hardened bool) (metrics.Breakdown, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return metrics.Breakdown{}, err
	}
	g := e.SoftG
	if hardened {
		g = e.SoftGTMR
	}
	var parts []metrics.Breakdown
	var weights []float64
	for _, k := range e.App.Kernels {
		b, err := s.KernelSVF(appName, k, hardened)
		if err != nil {
			return metrics.Breakdown{}, err
		}
		parts = append(parts, b)
		kc := g.Res.PerKernel[k]
		var w float64
		if kc != nil {
			w = float64(kc.DynInstrs)
		}
		parts[len(parts)-1] = b
		weights = append(weights, w)
	}
	return metrics.Weighted(parts, weights), nil
}

// AppAVFRF measures the application AVF restricted to the register file
// (AVF-RF, Figure 4), cycle-weighted over kernels.
func (s *Study) AppAVFRF(appName string) (metrics.Breakdown, error) {
	return s.appStructAVF(appName, []gpu.Structure{gpu.RF})
}

// AppAVFCache measures AVF over the cache structures only (AVF-Cache,
// Figure 5: L1D + L1T + L2), cycle-weighted over kernels and size-weighted
// within the subset.
func (s *Study) AppAVFCache(appName string) (metrics.Breakdown, error) {
	return s.appStructAVF(appName, []gpu.Structure{gpu.L1D, gpu.L1T, gpu.L2})
}

func (s *Study) appStructAVF(appName string, sts []gpu.Structure) (metrics.Breakdown, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return metrics.Breakdown{}, err
	}
	var parts []metrics.Breakdown
	var weights []float64
	for _, k := range e.App.Kernels {
		var structs []metrics.StructAVF
		for _, st := range sts {
			tl, df, err := s.MicroTally(appName, k, st, false)
			if err != nil {
				return metrics.Breakdown{}, err
			}
			structs = append(structs, metrics.NewStructAVF(st, tl, df))
		}
		parts = append(parts, metrics.SubsetAVF(s.Cfg, structs))
		weights = append(weights, kernelCycles(e.MicroG, k))
	}
	return metrics.Weighted(parts, weights), nil
}

// AppSVFLD measures the application's load-only SVF (SVF-LD, Figure 5).
func (s *Study) AppSVFLD(appName string) (metrics.Breakdown, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return metrics.Breakdown{}, err
	}
	var parts []metrics.Breakdown
	var weights []float64
	for _, k := range e.App.Kernels {
		tl, err := s.SoftTally(appName, k, softfi.SVFLD, false)
		if err != nil {
			return metrics.Breakdown{}, err
		}
		parts = append(parts, metrics.FromTally(tl))
		kc := e.SoftG.Res.PerKernel[k]
		var w float64
		if kc != nil {
			w = float64(kc.DynInstrs)
		}
		weights = append(weights, w)
	}
	return metrics.Weighted(parts, weights), nil
}

// CtrlAffectedPct pools the five per-structure microarchitecture campaigns
// of a kernel and returns the fraction of masked runs whose cycle count
// deviated from golden — the control-path proxy of Figure 11.
func (s *Study) CtrlAffectedPct(appName, kernel string, hardened bool) (float64, error) {
	var pooled campaign.Tally
	for _, st := range gpu.Structures {
		tl, _, err := s.MicroTally(appName, kernel, st, hardened)
		if err != nil {
			return 0, err
		}
		pooled.Merge(tl)
	}
	return pooled.CtrlAffectedPct(), nil
}

// KernelStats returns the fault-free microarchitectural profile of a kernel
// (the resource-utilisation metrics of Figure 3).
func (s *Study) KernelStats(appName, kernel string) (*sim.KernelStats, []sim.LaunchSpan, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return nil, nil, err
	}
	ks := e.MicroG.Res.PerKernel[kernel]
	if ks == nil {
		return nil, nil, fmt.Errorf("%s: kernel %s not found", appName, kernel)
	}
	var spans []sim.LaunchSpan
	for _, sp := range e.MicroG.Res.Spans {
		if sp.Kernel == kernel {
			spans = append(spans, sp)
		}
	}
	return ks, spans, nil
}

// KernelIDs lists all 23 (app, kernel) pairs in the paper's order.
func (s *Study) KernelIDs() []KernelID {
	var out []KernelID
	for _, a := range kernels.All() {
		for _, k := range a.Kernels {
			out = append(out, KernelID{App: a.Name, Kernel: k})
		}
	}
	return out
}

// KernelID names one kernel of one application.
type KernelID struct{ App, Kernel string }

// Label renders the Figure 2 style label, e.g. "SRADv1 K4".
func (k KernelID) Label() string { return k.App + " " + k.Kernel }

// SortedAppNames returns the application names in the paper's order.
func SortedAppNames() []string {
	var out []string
	for _, a := range kernels.All() {
		out = append(out, a.Name)
	}
	return out
}
