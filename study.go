// Package gpurel reproduces "GPU Reliability Assessment: Insights Across the
// Abstraction Layers" (IEEE CLUSTER 2024): cross-layer AVF measurement on a
// cycle-level GPU microarchitecture simulator (the gpuFI-4/GPGPU-Sim
// analogue), software-level SVF measurement on a functional executor (the
// NVBitFI analogue), the 11-benchmark/23-kernel evaluation, thread-level TMR
// hardening, and the trend analyses behind every table and figure of the
// paper.
//
// Study is the entry point: it owns the chip configuration and campaign
// sizing, lazily builds and caches golden runs, and memoises every campaign
// so that figures sharing data (e.g. Figure 1 and Table I) measure it once.
package gpurel

import (
	"fmt"
	"math/rand"

	"sync"

	"gpurel/internal/campaign"
	"gpurel/internal/device"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/harden"
	"gpurel/internal/kernels"
	"gpurel/internal/metrics"
	"gpurel/internal/microfi"
	"gpurel/internal/sim"
	"gpurel/internal/softfi"
)

// Study orchestrates the paper's measurements. The zero value is not usable;
// call NewStudy.
type Study struct {
	Cfg     gpu.Config
	Runs    int   // injections per campaign point
	Seed    int64 // base seed; campaigns derive per-run seeds from it
	Workers int   // parallel injection workers (0 = GOMAXPROCS)

	// RunPoint, when non-nil, executes campaign points instead of the local
	// campaign.Run — e.g. by submitting them to a gpureld daemon
	// (internal/service/client). The options carry the fully derived point
	// seed (see PointSeed), so a remote executor reproduces the local tally
	// bit for bit. Memoisation still applies on top.
	RunPoint func(spec PointSpec, opts campaign.Options) (campaign.Tally, error)

	mu    sync.Mutex
	apps  map[string]*AppEval
	micro map[microKey]campaign.Tally
	soft  map[softKey]campaign.Tally
}

// NewStudy returns a study over the default scaled-Volta chip.
func NewStudy(runs int, seed int64) *Study {
	return &Study{
		Cfg:   gpu.Volta(),
		Runs:  runs,
		Seed:  seed,
		apps:  map[string]*AppEval{},
		micro: map[microKey]campaign.Tally{},
		soft:  map[softKey]campaign.Tally{},
	}
}

// Apps returns the 11 benchmark applications in the paper's order.
func (s *Study) Apps() []kernels.App { return kernels.All() }

// AppEval is the cached per-application state: plain and hardened jobs with
// their golden runs on both simulators.
type AppEval struct {
	App kernels.App

	Job       *device.Job
	MicroG    *microfi.GoldenRun
	SoftG     *softfi.GoldenRun
	JobTMR    *device.Job
	MicroGTMR *microfi.GoldenRun
	SoftGTMR  *softfi.GoldenRun
}

type microKey struct {
	app, kernel string
	structure   gpu.Structure
	hardened    bool
}

type softKey struct {
	app, kernel string
	mode        softfi.Mode
	hardened    bool
}

// Layer selects which injector a campaign point runs on.
type Layer string

const (
	// LayerMicro is the cross-layer path: bit flips in the raw storage
	// arrays of the cycle-level simulator (the gpuFI-4 analogue).
	LayerMicro Layer = "micro"
	// LayerSoft is the software-only path: instruction-level injection on
	// the functional executor (the NVBitFI analogue).
	LayerSoft Layer = "soft"
)

// PointSpec identifies one campaign point — the unit of work the campaign
// scheduler (internal/service) accepts, checkpoints and resumes. Structure
// is meaningful only for LayerMicro, Mode only for LayerSoft.
type PointSpec struct {
	Layer     Layer
	App       string
	Kernel    string
	Structure gpu.Structure
	Mode      softfi.Mode
	Hardened  bool
}

// PointSeed derives the campaign seed of a point from a base seed, exactly
// as Study's memoised tallies always have: base + FNV-1a of the point's
// identity string. Run i of the point then uses rand.NewSource(seed+i)
// (campaign.RunRange), which is what makes points resumable anywhere.
func PointSeed(base int64, spec PointSpec) int64 {
	switch spec.Layer {
	case LayerSoft:
		return base + int64(hashKey(fmt.Sprintf("soft|%s|%s|%d|%v", spec.App, spec.Kernel, spec.Mode, spec.Hardened)))
	default:
		return base + int64(hashKey(fmt.Sprintf("micro|%s|%s|%d|%v", spec.App, spec.Kernel, spec.Structure, spec.Hardened)))
	}
}

// PointExperiment builds (caching golden runs on first use) the injection
// closure of one campaign point. The returned Experiment is safe for
// concurrent calls and deterministic per (run, rng) — the entry point the
// campaign service schedules run-ranges against.
func (s *Study) PointExperiment(spec PointSpec) (campaign.Experiment, error) {
	e, err := s.Eval(spec.App)
	if err != nil {
		return nil, err
	}
	switch spec.Layer {
	case LayerMicro:
		job, g := e.Job, e.MicroG
		if spec.Hardened {
			job, g = e.JobTMR, e.MicroGTMR
		}
		t := microfi.Target{Structure: spec.Structure, Kernel: spec.Kernel, IncludeVote: spec.Hardened}
		return func(run int, rng *rand.Rand) faults.Result {
			return microfi.Inject(job, g, t, rng)
		}, nil
	case LayerSoft:
		job, g := e.Job, e.SoftG
		if spec.Hardened {
			job, g = e.JobTMR, e.SoftGTMR
		}
		t := softfi.Target{Kernel: spec.Kernel, Mode: spec.Mode, IncludeVote: spec.Hardened}
		return func(run int, rng *rand.Rand) faults.Result {
			return softfi.Inject(job, g, t, rng)
		}, nil
	default:
		return nil, fmt.Errorf("unknown campaign layer %q", spec.Layer)
	}
}

// runPoint executes (locally or through the RunPoint hook) one campaign
// point with the study's sizing and the point's derived seed.
func (s *Study) runPoint(spec PointSpec) (campaign.Tally, error) {
	opts := campaign.Options{Runs: s.Runs, Seed: PointSeed(s.Seed, spec), Workers: s.Workers}
	if s.RunPoint != nil {
		return s.RunPoint(spec, opts)
	}
	fn, err := s.PointExperiment(spec)
	if err != nil {
		return campaign.Tally{}, err
	}
	return campaign.Run(opts, fn), nil
}

// Eval returns (building and caching on first use) the evaluation state of
// the named application.
func (s *Study) Eval(appName string) (*AppEval, error) {
	s.mu.Lock()
	if e, ok := s.apps[appName]; ok {
		s.mu.Unlock()
		return e, nil
	}
	s.mu.Unlock()

	app, err := kernels.ByName(appName)
	if err != nil {
		return nil, err
	}
	e := &AppEval{App: app, Job: app.Build()}
	if e.MicroG, err = microfi.Golden(e.Job, s.Cfg); err != nil {
		return nil, fmt.Errorf("%s: %w", appName, err)
	}
	if e.SoftG, err = softfi.Golden(e.Job); err != nil {
		return nil, fmt.Errorf("%s: %w", appName, err)
	}
	e.JobTMR = harden.TMR(e.Job)
	if e.MicroGTMR, err = microfi.Golden(e.JobTMR, s.Cfg); err != nil {
		return nil, fmt.Errorf("%s+TMR: %w", appName, err)
	}
	if e.SoftGTMR, err = softfi.Golden(e.JobTMR); err != nil {
		return nil, fmt.Errorf("%s+TMR: %w", appName, err)
	}

	s.mu.Lock()
	s.apps[appName] = e
	s.mu.Unlock()
	return e, nil
}

// MicroTally runs (or recalls) the microarchitecture-level campaign for one
// (app, kernel, structure) point and returns the tally plus the derating
// factor of the target.
func (s *Study) MicroTally(appName, kernel string, st gpu.Structure, hardened bool) (campaign.Tally, float64, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return campaign.Tally{}, 0, err
	}
	g := e.MicroG
	if hardened {
		g = e.MicroGTMR
	}
	t := microfi.Target{Structure: st, Kernel: kernel, IncludeVote: hardened}
	key := microKey{appName, kernel, st, hardened}

	s.mu.Lock()
	tl, ok := s.micro[key]
	s.mu.Unlock()
	if !ok {
		tl, err = s.runPoint(PointSpec{Layer: LayerMicro, App: appName, Kernel: kernel, Structure: st, Hardened: hardened})
		if err != nil {
			return campaign.Tally{}, 0, err
		}
		s.mu.Lock()
		s.micro[key] = tl
		s.mu.Unlock()
	}
	return tl, t.DF(g), nil
}

// SoftTally runs (or recalls) the software-level campaign for one
// (app, kernel, mode) point.
func (s *Study) SoftTally(appName, kernel string, mode softfi.Mode, hardened bool) (campaign.Tally, error) {
	if _, err := s.Eval(appName); err != nil {
		return campaign.Tally{}, err
	}
	key := softKey{appName, kernel, mode, hardened}

	s.mu.Lock()
	tl, ok := s.soft[key]
	s.mu.Unlock()
	if !ok {
		var err error
		tl, err = s.runPoint(PointSpec{Layer: LayerSoft, App: appName, Kernel: kernel, Mode: mode, Hardened: hardened})
		if err != nil {
			return campaign.Tally{}, err
		}
		s.mu.Lock()
		s.soft[key] = tl
		s.mu.Unlock()
	}
	return tl, nil
}

func hashKey(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// KernelAVF measures the full-chip cross-layer AVF of one kernel: one
// campaign per hardware structure, derated, consolidated by structure bit
// counts (§II-B).
func (s *Study) KernelAVF(appName, kernel string, hardened bool) (metrics.Breakdown, []metrics.StructAVF, error) {
	var structs []metrics.StructAVF
	for _, st := range gpu.Structures {
		tl, df, err := s.MicroTally(appName, kernel, st, hardened)
		if err != nil {
			return metrics.Breakdown{}, nil, err
		}
		structs = append(structs, metrics.NewStructAVF(st, tl, df))
	}
	return metrics.ChipAVF(s.Cfg, structs), structs, nil
}

// KernelSVF measures the SVF of one kernel.
func (s *Study) KernelSVF(appName, kernel string, hardened bool) (metrics.Breakdown, error) {
	tl, err := s.SoftTally(appName, kernel, softfi.SVF, hardened)
	if err != nil {
		return metrics.Breakdown{}, err
	}
	return metrics.FromTally(tl), nil
}

// kernelCycles returns the cycle weight of each kernel of an app (golden).
func kernelCycles(g *microfi.GoldenRun, kernel string) float64 {
	var c int64
	for _, sp := range g.Res.Spans {
		if sp.Kernel == kernel {
			c += sp.End - sp.Start
		}
	}
	return float64(c)
}

// AppAVF measures the application AVF: per-kernel AVFs weighted by kernel
// cycles (§II-B).
func (s *Study) AppAVF(appName string, hardened bool) (metrics.Breakdown, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return metrics.Breakdown{}, err
	}
	g := e.MicroG
	if hardened {
		g = e.MicroGTMR
	}
	var parts []metrics.Breakdown
	var weights []float64
	for _, k := range e.App.Kernels {
		b, _, err := s.KernelAVF(appName, k, hardened)
		if err != nil {
			return metrics.Breakdown{}, err
		}
		parts = append(parts, b)
		weights = append(weights, kernelCycles(g, k))
	}
	return metrics.Weighted(parts, weights), nil
}

// AppSVF measures the application SVF: per-kernel SVFs weighted by executed
// instruction counts (§II-C).
func (s *Study) AppSVF(appName string, hardened bool) (metrics.Breakdown, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return metrics.Breakdown{}, err
	}
	g := e.SoftG
	if hardened {
		g = e.SoftGTMR
	}
	var parts []metrics.Breakdown
	var weights []float64
	for _, k := range e.App.Kernels {
		b, err := s.KernelSVF(appName, k, hardened)
		if err != nil {
			return metrics.Breakdown{}, err
		}
		parts = append(parts, b)
		kc := g.Res.PerKernel[k]
		var w float64
		if kc != nil {
			w = float64(kc.DynInstrs)
		}
		parts[len(parts)-1] = b
		weights = append(weights, w)
	}
	return metrics.Weighted(parts, weights), nil
}

// AppAVFRF measures the application AVF restricted to the register file
// (AVF-RF, Figure 4), cycle-weighted over kernels.
func (s *Study) AppAVFRF(appName string) (metrics.Breakdown, error) {
	return s.appStructAVF(appName, []gpu.Structure{gpu.RF})
}

// AppAVFCache measures AVF over the cache structures only (AVF-Cache,
// Figure 5: L1D + L1T + L2), cycle-weighted over kernels and size-weighted
// within the subset.
func (s *Study) AppAVFCache(appName string) (metrics.Breakdown, error) {
	return s.appStructAVF(appName, []gpu.Structure{gpu.L1D, gpu.L1T, gpu.L2})
}

func (s *Study) appStructAVF(appName string, sts []gpu.Structure) (metrics.Breakdown, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return metrics.Breakdown{}, err
	}
	var parts []metrics.Breakdown
	var weights []float64
	for _, k := range e.App.Kernels {
		var structs []metrics.StructAVF
		for _, st := range sts {
			tl, df, err := s.MicroTally(appName, k, st, false)
			if err != nil {
				return metrics.Breakdown{}, err
			}
			structs = append(structs, metrics.NewStructAVF(st, tl, df))
		}
		parts = append(parts, metrics.SubsetAVF(s.Cfg, structs))
		weights = append(weights, kernelCycles(e.MicroG, k))
	}
	return metrics.Weighted(parts, weights), nil
}

// AppSVFLD measures the application's load-only SVF (SVF-LD, Figure 5).
func (s *Study) AppSVFLD(appName string) (metrics.Breakdown, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return metrics.Breakdown{}, err
	}
	var parts []metrics.Breakdown
	var weights []float64
	for _, k := range e.App.Kernels {
		tl, err := s.SoftTally(appName, k, softfi.SVFLD, false)
		if err != nil {
			return metrics.Breakdown{}, err
		}
		parts = append(parts, metrics.FromTally(tl))
		kc := e.SoftG.Res.PerKernel[k]
		var w float64
		if kc != nil {
			w = float64(kc.DynInstrs)
		}
		weights = append(weights, w)
	}
	return metrics.Weighted(parts, weights), nil
}

// CtrlAffectedPct pools the five per-structure microarchitecture campaigns
// of a kernel and returns the fraction of masked runs whose cycle count
// deviated from golden — the control-path proxy of Figure 11.
func (s *Study) CtrlAffectedPct(appName, kernel string, hardened bool) (float64, error) {
	var pooled campaign.Tally
	for _, st := range gpu.Structures {
		tl, _, err := s.MicroTally(appName, kernel, st, hardened)
		if err != nil {
			return 0, err
		}
		pooled.Merge(tl)
	}
	return pooled.CtrlAffectedPct(), nil
}

// KernelStats returns the fault-free microarchitectural profile of a kernel
// (the resource-utilisation metrics of Figure 3).
func (s *Study) KernelStats(appName, kernel string) (*sim.KernelStats, []sim.LaunchSpan, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return nil, nil, err
	}
	ks := e.MicroG.Res.PerKernel[kernel]
	if ks == nil {
		return nil, nil, fmt.Errorf("%s: kernel %s not found", appName, kernel)
	}
	var spans []sim.LaunchSpan
	for _, sp := range e.MicroG.Res.Spans {
		if sp.Kernel == kernel {
			spans = append(spans, sp)
		}
	}
	return ks, spans, nil
}

// KernelIDs lists all 23 (app, kernel) pairs in the paper's order.
func (s *Study) KernelIDs() []KernelID {
	var out []KernelID
	for _, a := range kernels.All() {
		for _, k := range a.Kernels {
			out = append(out, KernelID{App: a.Name, Kernel: k})
		}
	}
	return out
}

// KernelID names one kernel of one application.
type KernelID struct{ App, Kernel string }

// Label renders the Figure 2 style label, e.g. "SRADv1 K4".
func (k KernelID) Label() string { return k.App + " " + k.Kernel }

// SortedAppNames returns the application names in the paper's order.
func SortedAppNames() []string {
	var out []string
	for _, a := range kernels.All() {
		out = append(out, a.Name)
	}
	return out
}
