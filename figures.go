package gpurel

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gpurel/internal/ace"
	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/funcsim"
	"gpurel/internal/gpu"
	"gpurel/internal/kernels"
	"gpurel/internal/metrics"
	"gpurel/internal/microfi"
	"gpurel/internal/propagate"
	"gpurel/internal/report"
	"gpurel/internal/reuse"
	"gpurel/internal/sim"
	"gpurel/internal/softfi"
	"gpurel/internal/trend"

	"math/rand"
)

// campaignRun runs a one-off microarchitecture campaign outside the memo
// cache (used by ablations with non-default targets).
func campaignRun(s *Study, e *AppEval, tgt microfi.Target, seed int64) campaign.Tally {
	return campaign.Run(campaign.Options{Runs: s.Runs, Seed: seed, Workers: s.Workers},
		func(run int, rng *rand.Rand) faults.Result {
			return microfi.Inject(e.Job, e.MicroG, tgt, rng)
		})
}

// Record is one NDJSON line of machine-readable figure output (avfsvf
// -json): the figure name, the campaign sizing behind it, and the figure's
// data payload (the same result structs the gpureld service API serves).
type Record struct {
	Figure string `json:"figure"`
	// N is the per-point run budget the figure's campaigns were sized with.
	N int `json:"n"`
	// Margin99 is the a-priori worst-case (p=0.5) Wilson/normal 99% CI
	// half-width at N — ±2.35% at the paper's n=3000. Omitted when the
	// record carries no campaign data (N == 0).
	Margin99 float64 `json:"margin99,omitempty"`
	Data     any     `json:"data"`
}

// NewRecord builds a Record, deriving Margin99 from n (0 runs → no margin,
// not the +Inf sentinel WorstCaseMargin99 reports).
func NewRecord(figure string, n int, data any) Record {
	r := Record{Figure: figure, N: n, Data: data}
	if n > 0 {
		r.Margin99 = campaign.WorstCaseMargin99(n)
	}
	return r
}

// AppPoint is one application's AVF and SVF breakdowns (one bar pair of
// Figure 1 / 4 / 5).
type AppPoint struct {
	App      string
	AVF, SVF metrics.Breakdown
}

// Figure1 measures the application-level AVF and SVF of all 11 benchmarks.
func (s *Study) Figure1() ([]AppPoint, string, error) {
	var pts []AppPoint
	for _, a := range s.Apps() {
		avf, err := s.AppAVF(a.Name, false)
		if err != nil {
			return nil, "", err
		}
		svf, err := s.AppSVF(a.Name, false)
		if err != nil {
			return nil, "", err
		}
		pts = append(pts, AppPoint{App: a.Name, AVF: avf, SVF: svf})
	}
	t := report.Table{
		Title:  "Figure 1: application-level AVF (cross-layer) vs SVF (software-only)",
		Header: []string{"App", "SVF.SDC", "SVF.Timeout", "SVF.DUE", "SVF", "AVF.SDC", "AVF.Timeout", "AVF.DUE", "AVF"},
	}
	for _, p := range pts {
		t.AddRow(p.App,
			report.Pct(p.SVF.SDC), report.Pct(p.SVF.Timeout), report.Pct(p.SVF.DUE), report.Pct(p.SVF.Total()),
			report.Pct(p.AVF.SDC), report.Pct(p.AVF.Timeout), report.Pct(p.AVF.DUE), report.Pct(p.AVF.Total()))
	}
	t.AddFooter("note the scale separation: full-system AVF includes all hardware masking (§III-A)")
	return pts, t.String(), nil
}

// KernelPoint is one kernel's AVF and SVF (one bar pair of Figure 2 / 7).
type KernelPoint struct {
	ID       KernelID
	AVF, SVF metrics.Breakdown
}

// Figure2 measures the kernel-level AVF and SVF of all 23 kernels.
func (s *Study) Figure2() ([]KernelPoint, string, error) {
	var pts []KernelPoint
	for _, id := range s.KernelIDs() {
		avf, _, err := s.KernelAVF(id.App, id.Kernel, false)
		if err != nil {
			return nil, "", err
		}
		svf, err := s.KernelSVF(id.App, id.Kernel, false)
		if err != nil {
			return nil, "", err
		}
		pts = append(pts, KernelPoint{ID: id, AVF: avf, SVF: svf})
	}
	t := report.Table{
		Title:  "Figure 2: kernel-level AVF vs SVF (23 kernels)",
		Header: []string{"Kernel", "SVF.SDC", "SVF.Timeout", "SVF.DUE", "SVF", "AVF.SDC", "AVF.Timeout", "AVF.DUE", "AVF"},
	}
	for _, p := range pts {
		t.AddRow(p.ID.Label(),
			report.Pct(p.SVF.SDC), report.Pct(p.SVF.Timeout), report.Pct(p.SVF.DUE), report.Pct(p.SVF.Total()),
			report.Pct(p.AVF.SDC), report.Pct(p.AVF.Timeout), report.Pct(p.AVF.DUE), report.Pct(p.AVF.Total()))
	}
	return pts, t.String(), nil
}

// TableIRow is one row of Table I.
type TableIRow struct {
	Name                 string
	Consistent, Opposite int
}

// TableI classifies every workload pair as trend-consistent or
// trend-opposite across the four metric comparisons of the paper.
func (s *Study) TableI() ([]TableIRow, string, error) {
	appNames := SortedAppNames()

	appAVF := map[string]float64{}
	appSVF := map[string]float64{}
	appAVFRF := map[string]float64{}
	appAVFCache := map[string]float64{}
	appSVFLD := map[string]float64{}
	for _, a := range appNames {
		avf, err := s.AppAVF(a, false)
		if err != nil {
			return nil, "", err
		}
		svf, err := s.AppSVF(a, false)
		if err != nil {
			return nil, "", err
		}
		rf, err := s.AppAVFRF(a)
		if err != nil {
			return nil, "", err
		}
		cache, err := s.AppAVFCache(a)
		if err != nil {
			return nil, "", err
		}
		ld, err := s.AppSVFLD(a)
		if err != nil {
			return nil, "", err
		}
		appAVF[a], appSVF[a] = avf.Total(), svf.Total()
		appAVFRF[a], appAVFCache[a], appSVFLD[a] = rf.Total(), cache.Total(), ld.Total()
	}

	kernelIDs := s.KernelIDs()
	var kNames []string
	kAVF := map[string]float64{}
	kSVF := map[string]float64{}
	for _, id := range kernelIDs {
		avf, _, err := s.KernelAVF(id.App, id.Kernel, false)
		if err != nil {
			return nil, "", err
		}
		svf, err := s.KernelSVF(id.App, id.Kernel, false)
		if err != nil {
			return nil, "", err
		}
		kNames = append(kNames, id.Label())
		kAVF[id.Label()], kSVF[id.Label()] = avf.Total(), svf.Total()
	}

	var rows []TableIRow
	c, o, _ := trend.Compare(appNames, appAVF, appSVF)
	rows = append(rows, TableIRow{"Application-Level", c, o})
	c, o, _ = trend.Compare(kNames, kAVF, kSVF)
	rows = append(rows, TableIRow{"Kernel-Level", c, o})
	c, o, _ = trend.Compare(appNames, appAVFRF, appSVF)
	rows = append(rows, TableIRow{"AVF-RF vs. SVF", c, o})
	c, o, _ = trend.Compare(appNames, appAVFCache, appSVFLD)
	rows = append(rows, TableIRow{"AVF-Cache vs. SVF-LD", c, o})

	t := report.Table{
		Title:  "Table I: opposite trends in application or kernel pairs",
		Header: []string{"Comparison", "Consistent Trend", "Opposite Trend"},
	}
	for _, r := range rows {
		total := r.Consistent + r.Opposite
		t.AddRow(r.Name,
			fmt.Sprintf("%d (%d%%)", r.Consistent, int(100*float64(r.Consistent)/float64(total)+0.5)),
			fmt.Sprintf("%d (%d%%)", r.Opposite, int(100*float64(r.Opposite)/float64(total)+0.5)))
	}
	return rows, t.String(), nil
}

// PairMetrics is the Figure 3 data for one kernel pair: each named metric
// with the raw values of both kernels (rendered normalised).
type PairMetrics struct {
	KernelA, KernelB string
	Metrics          []trend.Metric
}

// kernelMetrics collects the Figure 3 metric vector of one kernel.
func (s *Study) kernelMetrics(app, kernel string) (map[string]float64, error) {
	ks, spans, err := s.KernelStats(app, kernel)
	if err != nil {
		return nil, err
	}
	avf, _, err := s.KernelAVF(app, kernel, false)
	if err != nil {
		return nil, err
	}
	svf, err := s.KernelSVF(app, kernel, false)
	if err != nil {
		return nil, err
	}
	var rfDF, smDF, cyc float64
	for _, sp := range spans {
		c := float64(sp.End - sp.Start)
		rfDF += c * sp.RFDeratingFactor(s.Cfg)
		smDF += c * sp.SmemDeratingFactor(s.Cfg)
		cyc += c
	}
	if cyc > 0 {
		rfDF /= cyc
		smDF /= cyc
	}
	missRate := func(m, a int64) float64 {
		if a == 0 {
			return 0
		}
		return float64(m) / float64(a)
	}
	return map[string]float64{
		"AVF":                avf.Total(),
		"SVF":                svf.Total(),
		"Occupancy":          ks.Occupancy(s.Cfg),
		"RF Derat. Factor":   rfDF,
		"SMEM Derat. Factor": smDF,
		"L1D Accesses":       float64(ks.L1D.Accesses),
		"L1D Miss Rate":      missRate(ks.L1D.Misses, ks.L1D.Accesses),
		"L1D Misses":         float64(ks.L1D.Misses),
		"L2 Accesses":        float64(ks.L2.Accesses),
		"L2 Miss Rate":       missRate(ks.L2.Misses, ks.L2.Accesses),
		"L2 Misses":          float64(ks.L2.Misses),
		"L2 Pending Hits":    float64(ks.L2.PendingHits),
		"L2 Reserv. Fails":   float64(ks.L2.ReservFails),
		"Load Instructions":  float64(ks.LoadInstrs),
		"SMEM Instructions":  float64(ks.SmemInstrs),
		"Store Instructions": float64(ks.StoreInstrs),
		"Memory Read":        float64(ks.DRAMRead),
		"Memory Write":       float64(ks.DRAMWrite),
	}, nil
}

// figure3MetricOrder is the x-axis of Figure 3.
var figure3MetricOrder = []string{
	"AVF", "SVF", "Occupancy", "RF Derat. Factor", "SMEM Derat. Factor",
	"L1D Accesses", "L1D Miss Rate", "L1D Misses",
	"L2 Accesses", "L2 Miss Rate", "L2 Misses", "L2 Pending Hits", "L2 Reserv. Fails",
	"Load Instructions", "SMEM Instructions", "Store Instructions",
	"Memory Read", "Memory Write",
}

// Figure3 compares the paper's three kernel pairs (3a: HotSpot K1 vs LUD K1,
// 3b: LUD K2 vs LUD K1, 3c: VA K1 vs SCP K1) across AVF, SVF and the
// resource-utilisation metrics, pairwise-normalised.
func (s *Study) Figure3() ([]PairMetrics, string, error) {
	pairs := []struct{ aApp, aK, bApp, bK string }{
		{"HotSpot", "K1", "LUD", "K1"}, // opposite trend (3a)
		{"LUD", "K2", "LUD", "K1"},     // consistent trend (3b)
		{"VA", "K1", "SCP", "K1"},      // opposite trend, unclear utilisation (3c)
	}
	var out []PairMetrics
	var sb strings.Builder
	for i, p := range pairs {
		ma, err := s.kernelMetrics(p.aApp, p.aK)
		if err != nil {
			return nil, "", err
		}
		mb, err := s.kernelMetrics(p.bApp, p.bK)
		if err != nil {
			return nil, "", err
		}
		pm := PairMetrics{KernelA: p.aApp + " " + p.aK, KernelB: p.bApp + " " + p.bK}
		t := report.Table{
			Title:  fmt.Sprintf("Figure 3%c: %s vs %s (pairwise-normalised)", 'a'+i, pm.KernelA, pm.KernelB),
			Header: []string{"Metric", pm.KernelA, pm.KernelB},
		}
		for _, name := range figure3MetricOrder {
			m := trend.Metric{Name: name, A: ma[name], B: mb[name]}
			pm.Metrics = append(pm.Metrics, m)
			na, nb := trend.Normalize(m.A, m.B)
			t.AddRow(name, report.PctShort(na), report.PctShort(nb))
		}
		out = append(out, pm)
		sb.WriteString(t.String() + "\n")
	}
	return out, sb.String(), nil
}

// Figure4 compares AVF-RF (register-file-only AVF) against SVF per app.
func (s *Study) Figure4() ([]AppPoint, string, error) {
	var pts []AppPoint
	for _, a := range s.Apps() {
		rf, err := s.AppAVFRF(a.Name)
		if err != nil {
			return nil, "", err
		}
		svf, err := s.AppSVF(a.Name, false)
		if err != nil {
			return nil, "", err
		}
		pts = append(pts, AppPoint{App: a.Name, AVF: rf, SVF: svf})
	}
	t := report.Table{
		Title:  "Figure 4: AVF-RF (register file only) vs SVF",
		Header: []string{"App", "SVF.SDC", "SVF.Timeout", "SVF.DUE", "SVF", "AVF-RF.SDC", "AVF-RF.Timeout", "AVF-RF.DUE", "AVF-RF"},
	}
	for _, p := range pts {
		t.AddRow(p.App,
			report.Pct(p.SVF.SDC), report.Pct(p.SVF.Timeout), report.Pct(p.SVF.DUE), report.Pct(p.SVF.Total()),
			report.Pct(p.AVF.SDC), report.Pct(p.AVF.Timeout), report.Pct(p.AVF.DUE), report.Pct(p.AVF.Total()))
	}
	return pts, t.String(), nil
}

// Figure5 compares AVF-Cache (L1D+L1T+L2) against SVF-LD (loads only).
func (s *Study) Figure5() ([]AppPoint, string, error) {
	var pts []AppPoint
	for _, a := range s.Apps() {
		cache, err := s.AppAVFCache(a.Name)
		if err != nil {
			return nil, "", err
		}
		ld, err := s.AppSVFLD(a.Name)
		if err != nil {
			return nil, "", err
		}
		pts = append(pts, AppPoint{App: a.Name, AVF: cache, SVF: ld})
	}
	t := report.Table{
		Title:  "Figure 5: AVF-Cache (L1D+L1T+L2) vs SVF-LD (load instructions)",
		Header: []string{"App", "SVF-LD.SDC", "SVF-LD.Timeout", "SVF-LD.DUE", "SVF-LD", "AVF-C.SDC", "AVF-C.Timeout", "AVF-C.DUE", "AVF-Cache"},
	}
	for _, p := range pts {
		t.AddRow(p.App,
			report.Pct(p.SVF.SDC), report.Pct(p.SVF.Timeout), report.Pct(p.SVF.DUE), report.Pct(p.SVF.Total()),
			report.Pct(p.AVF.SDC), report.Pct(p.AVF.Timeout), report.Pct(p.AVF.DUE), report.Pct(p.AVF.Total()))
	}
	return pts, t.String(), nil
}

// HardenedPoint carries one kernel's vulnerability with and without TMR.
type HardenedPoint struct {
	ID                KernelID
	AVF, AVFHardened  metrics.Breakdown
	SVF, SVFHardened  metrics.Breakdown
	CtrlPct, CtrlPctH float64
	StructAVF         []metrics.StructAVF
	StructAVFHardened []metrics.StructAVF
}

// Hardened measures every kernel with and without TMR; Figures 7-11 are
// views over this data.
func (s *Study) Hardened() ([]HardenedPoint, error) {
	var pts []HardenedPoint
	for _, id := range s.KernelIDs() {
		var p HardenedPoint
		p.ID = id
		var err error
		if p.AVF, p.StructAVF, err = s.KernelAVF(id.App, id.Kernel, false); err != nil {
			return nil, err
		}
		if p.AVFHardened, p.StructAVFHardened, err = s.KernelAVF(id.App, id.Kernel, true); err != nil {
			return nil, err
		}
		if p.SVF, err = s.KernelSVF(id.App, id.Kernel, false); err != nil {
			return nil, err
		}
		if p.SVFHardened, err = s.KernelSVF(id.App, id.Kernel, true); err != nil {
			return nil, err
		}
		if p.CtrlPct, err = s.CtrlAffectedPct(id.App, id.Kernel, false); err != nil {
			return nil, err
		}
		if p.CtrlPctH, err = s.CtrlAffectedPct(id.App, id.Kernel, true); err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// Figure7 renders kernel AVF and SVF with and without hardening.
func Figure7(pts []HardenedPoint) string {
	t := report.Table{
		Title:  "Figure 7: AVF and SVF of kernels without / with TMR hardening",
		Header: []string{"Kernel", "SVF w/o", "SVF w/", "AVF w/o", "AVF w/"},
	}
	for _, p := range pts {
		t.AddRow(p.ID.Label(),
			report.Pct(p.SVF.Total()), report.Pct(p.SVFHardened.Total()),
			report.Pct(p.AVF.Total()), report.Pct(p.AVFHardened.Total()))
	}
	return t.String()
}

// Figure8 renders the SDC share of AVF with and without hardening.
func Figure8(pts []HardenedPoint) string {
	t := report.Table{
		Title:  "Figure 8: SDC outcomes of AVF without / with TMR hardening",
		Header: []string{"Kernel", "AVF.SDC w/o", "AVF.SDC w/"},
	}
	for _, p := range pts {
		t.AddRow(p.ID.Label(), report.Pct(p.AVF.SDC), report.Pct(p.AVFHardened.SDC))
	}
	t.AddFooter("SVF reports SDCs eliminated by TMR; residual AVF SDCs are hardware-only effects (§IV-B)")
	return t.String()
}

// Figure9 renders timeout+DUE of AVF and SVF with and without hardening.
func Figure9(pts []HardenedPoint) string {
	t := report.Table{
		Title:  "Figure 9: Timeout+DUE outcomes of AVF and SVF without / with TMR",
		Header: []string{"Kernel", "SVF.T+D w/o", "SVF.T+D w/", "AVF.T+D w/o", "AVF.T+D w/"},
	}
	for _, p := range pts {
		t.AddRow(p.ID.Label(),
			report.Pct(p.SVF.Timeout+p.SVF.DUE), report.Pct(p.SVFHardened.Timeout+p.SVFHardened.DUE),
			report.Pct(p.AVF.Timeout+p.AVF.DUE), report.Pct(p.AVFHardened.Timeout+p.AVFHardened.DUE))
	}
	return t.String()
}

// figure10Kernels are the representative kernels shown in Figure 10.
var figure10Kernels = []KernelID{
	{"LUD", "K2"}, {"SCP", "K1"}, {"NW", "K2"},
	{"BackProp", "K2"}, {"SRADv1", "K2"}, {"K-Means", "K2"},
}

// Figure10 renders the per-structure AVF (RF, SMEM, L1D, L2) of the
// representative kernels before and after hardening.
func Figure10(pts []HardenedPoint) string {
	byID := map[KernelID]HardenedPoint{}
	for _, p := range pts {
		byID[p.ID] = p
	}
	var sb strings.Builder
	for _, st := range []gpu.Structure{gpu.RF, gpu.SMEM, gpu.L1D, gpu.L2} {
		t := report.Table{
			Title: fmt.Sprintf("Figure 10 (%s): per-structure AVF before/after TMR", st),
			Header: []string{"Kernel", "SDC w/o", "Timeout w/o", "DUE w/o",
				"SDC w/", "Timeout w/", "DUE w/"},
		}
		for _, id := range figure10Kernels {
			p, ok := byID[id]
			if !ok {
				continue
			}
			var a, b metrics.Breakdown
			for _, sa := range p.StructAVF {
				if sa.Structure == st {
					a = sa.AVF
				}
			}
			for _, sa := range p.StructAVFHardened {
				if sa.Structure == st {
					b = sa.AVF
				}
			}
			t.AddRow(id.Label(),
				report.Pct(a.SDC), report.Pct(a.Timeout), report.Pct(a.DUE),
				report.Pct(b.SDC), report.Pct(b.Timeout), report.Pct(b.DUE))
		}
		sb.WriteString(t.String() + "\n")
	}
	return sb.String()
}

// Figure11 renders the control-path-affected masked percentage per kernel.
func Figure11(pts []HardenedPoint) string {
	t := report.Table{
		Title:  "Figure 11: control-path affected masked runs (microarchitecture-level FI)",
		Header: []string{"Kernel", "w/o Hardening", "w/ Hardening"},
	}
	for _, p := range pts {
		t.AddRow(p.ID.Label(), report.Pct(p.CtrlPct), report.Pct(p.CtrlPctH))
	}
	return t.String()
}

// Figure12 demonstrates the register reuse analyzer of §V-B on the paper's
// example program: a fault in R0 at instruction #4 affects every subsequent
// read until R0 is rewritten.
func Figure12() (reuse.Analysis, string) {
	p := reuse.Figure12Program()
	a := reuse.ReadersAfter(p, 3, 0) // fault in R0 as read by PC 3 (the paper's #4)
	return a, "Figure 12: register reuse analyzer\n" + reuse.Annotate(p, a)
}

// SpeedComparison quantifies the paper's footnote-1 observation: the
// software-level method is faster than cross-layer simulation by a large
// factor. It times n runs of each engine on the given app.
func (s *Study) SpeedComparison(appName string, n int) (microPerRun, softPerRun time.Duration, err error) {
	e, err := s.Eval(appName)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		r := sim.Run(e.Job, s.Cfg, sim.Options{})
		if r.Err != nil {
			return 0, 0, r.Err
		}
	}
	microPerRun = time.Since(start) / time.Duration(n)
	start = time.Now()
	for i := 0; i < n; i++ {
		r := funcsim.Run(e.Job, funcsim.Options{})
		if r.Err != nil {
			return 0, 0, r.Err
		}
	}
	softPerRun = time.Since(start) / time.Duration(n)
	return microPerRun, softPerRun, nil
}

// ACEComparison contrasts the three points on the paper's accuracy/speed
// spectrum (§I) for the register file of one application: statistical
// injection-based AVF-RF (slow, models all masking), single-run analytical
// ACE AVF-RF (fast, no logical masking → upper bound), and the
// microarchitecture-independent PVF.
type ACEComparison struct {
	App       string
	AVFRF     float64 // statistical, FR×DF
	AVFACE    float64 // analytical ACE
	PVF       float64
	DynInstrs int64
}

// CompareACE runs the comparison for one application.
func (s *Study) CompareACE(appName string) (*ACEComparison, string, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return nil, "", err
	}
	fi, err := s.AppAVFRF(appName)
	if err != nil {
		return nil, "", err
	}
	aceRes, err := ace.AnalyzeRF(e.Job, s.Cfg)
	if err != nil {
		return nil, "", err
	}
	pvfRes, err := ace.AnalyzePVF(e.Job)
	if err != nil {
		return nil, "", err
	}
	c := &ACEComparison{
		App:       appName,
		AVFRF:     fi.Total(),
		AVFACE:    aceRes.AVFACE,
		PVF:       pvfRes.PVF,
		DynInstrs: pvfRes.DynInstrs,
	}
	t := report.Table{
		Title:  fmt.Sprintf("Register-file vulnerability of %s across methodologies", appName),
		Header: []string{"Method", "Value", "Runs needed", "Masking modelled"},
	}
	t.AddRow("AVF-RF (statistical FI)", report.Pct(c.AVFRF), fmt.Sprint(s.Runs), "hardware + logical")
	t.AddRow("AVF-RF (ACE analysis)", report.Pct(c.AVFACE), "1", "liveness only")
	t.AddRow("PVF (arch.-independent)", report.Pct(c.PVF), "1", "liveness only, no µarch")
	return c, t.String(), nil
}

// BudgetedProtection quantifies the §III-A pitfall: with budget to harden
// only k applications with TMR, a designer ranks candidates by some
// vulnerability metric. The experiment compares choosing by SVF (the
// software view) against choosing by AVF (the ground truth): for each
// policy, the protected apps contribute their hardened AVF and the rest
// their plain AVF; the residual is the mean over the candidate set.
type BudgetedProtection struct {
	Apps              []string
	K                 int
	ChosenBySVF       []string
	ChosenByAVF       []string
	ResidualSVFPolicy float64 // mean AVF when protecting the SVF-chosen set
	ResidualAVFPolicy float64 // mean AVF when protecting the AVF-chosen set
}

// RunBudgetedProtection evaluates both policies over the given apps.
func (s *Study) RunBudgetedProtection(apps []string, k int) (*BudgetedProtection, string, error) {
	plain := map[string]float64{}
	hardened := map[string]float64{}
	svf := map[string]float64{}
	for _, a := range apps {
		pb, err := s.AppAVF(a, false)
		if err != nil {
			return nil, "", err
		}
		sb, err := s.AppSVF(a, false)
		if err != nil {
			return nil, "", err
		}
		plain[a], svf[a] = pb.Total(), sb.Total()
	}
	rank := func(m map[string]float64) []string {
		out := append([]string(nil), apps...)
		sort.SliceStable(out, func(i, j int) bool { return m[out[i]] > m[out[j]] })
		return out
	}
	bp := &BudgetedProtection{Apps: apps, K: k}
	bp.ChosenBySVF = rank(svf)[:k]
	bp.ChosenByAVF = rank(plain)[:k]

	// hardened AVF only for apps some policy actually protects
	need := map[string]bool{}
	for _, a := range append(append([]string(nil), bp.ChosenBySVF...), bp.ChosenByAVF...) {
		need[a] = true
	}
	for a := range need {
		hb, err := s.AppAVF(a, true)
		if err != nil {
			return nil, "", err
		}
		hardened[a] = hb.Total()
	}
	residual := func(protect []string) float64 {
		prot := map[string]bool{}
		for _, a := range protect {
			prot[a] = true
		}
		var sum float64
		for _, a := range apps {
			if prot[a] {
				sum += hardened[a]
			} else {
				sum += plain[a]
			}
		}
		return sum / float64(len(apps))
	}
	bp.ResidualSVFPolicy = residual(bp.ChosenBySVF)
	bp.ResidualAVFPolicy = residual(bp.ChosenByAVF)

	t := report.Table{
		Title:  fmt.Sprintf("Budgeted protection (§III-A): TMR for %d of %d applications", k, len(apps)),
		Header: []string{"Policy", "Protects", "Residual mean AVF"},
	}
	t.AddRow("rank by SVF (software view)", strings.Join(bp.ChosenBySVF, ", "), report.Pct(bp.ResidualSVFPolicy))
	t.AddRow("rank by AVF (ground truth)", strings.Join(bp.ChosenByAVF, ", "), report.Pct(bp.ResidualAVFPolicy))
	t.AddFooter("choosing by SVF wastes the budget whenever the sets differ; TMR can even")
	t.AddFooter("raise a protected app's AVF (§IV), so the residual may exceed doing nothing")
	return bp, t.String(), nil
}

// InputSizeAblation measures how resilience estimates move with input size
// — the observation behind SUGAR (the paper's ref. [48]: input sizing
// changes and can predict resilience). It runs SVF and AVF-RF campaigns on
// vectorAdd at several element counts.
func (s *Study) InputSizeAblation(sizes []int) (string, error) {
	t := report.Table{
		Title:  "Input-size ablation: vectorAdd resilience vs element count",
		Header: []string{"Elements", "SVF", "AVF-RF", "RF DF", "Cycles"},
	}
	for _, n := range sizes {
		app := kernels.VAWithSize(n)
		job := app.Build()
		mg, err := microfi.Golden(job, s.Cfg)
		if err != nil {
			return "", err
		}
		sg, err := softfi.Golden(job)
		if err != nil {
			return "", err
		}
		tgt := microfi.Target{Structure: gpu.RF, Kernel: "K1"}
		seedM := s.Seed + int64(hashKey(fmt.Sprintf("size|m|%d", n)))
		mt := campaign.Run(campaign.Options{Runs: s.Runs, Seed: seedM, Workers: s.Workers},
			func(run int, rng *rand.Rand) faults.Result {
				return microfi.Inject(job, mg, tgt, rng)
			})
		st := softfi.Target{Kernel: "K1", Mode: softfi.SVF}
		seedS := s.Seed + int64(hashKey(fmt.Sprintf("size|s|%d", n)))
		stl := campaign.Run(campaign.Options{Runs: s.Runs, Seed: seedS, Workers: s.Workers},
			func(run int, rng *rand.Rand) faults.Result {
				return softfi.Inject(job, sg, st, rng)
			})
		df := tgt.DF(mg)
		t.AddRow(fmt.Sprint(n), report.Pct(stl.FR()), report.Pct(mt.FR()*df),
			fmt.Sprintf("%.4f", df), fmt.Sprint(mg.Res.Cycles))
	}
	t.AddFooter("SUGAR [48]: resilience estimates shift with input size; the derating factor")
	t.AddFooter("grows with the thread count until the register file saturates")
	return t.String(), nil
}

// PropagationStudy is the §VI future-work experiment: use fast
// error-propagation analysis (taint tracking, one analysis run per site)
// to predict the SDC outcome of software-level injections, then validate
// against real injections at the same dynamic sites — the Trident-style
// accuracy evaluation.
type PropagationStudy struct {
	App                string
	Sites              int
	Crashes            int // sites whose real injection crashed/timed out (not predicted)
	TruePos, TrueNeg   int
	FalsePos, FalseNeg int
	MeanTaintedInstrs  float64
	MeanTaintedThreads float64
}

// Accuracy returns the agreement ratio over non-crashing sites.
func (p *PropagationStudy) Accuracy() float64 {
	n := p.TruePos + p.TrueNeg + p.FalsePos + p.FalseNeg
	if n == 0 {
		return 0
	}
	return float64(p.TruePos+p.TrueNeg) / float64(n)
}

// RunPropagationStudy samples n injection sites of the app uniformly and
// compares the propagation prediction with the real outcome of a bit-30
// destination flip at the same site.
func (s *Study) RunPropagationStudy(appName string, n int) (*PropagationStudy, string, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return nil, "", err
	}
	g := e.SoftG.Res
	ps := &PropagationStudy{App: appName}
	rng := rand.New(rand.NewSource(s.Seed + int64(hashKey("prop|"+appName))))
	var sumInstrs, sumThreads float64
	for k := 0; k < n; k++ {
		idx := rng.Int63n(g.DstCands)
		pred, err := propagate.Analyze(e.Job, propagate.Seed{Index: idx})
		if err != nil {
			return nil, "", err
		}
		sumInstrs += float64(pred.TaintedInstrs)
		sumThreads += float64(pred.TaintedThreads)
		run := funcsim.Run(e.Job, funcsim.Options{
			MaxDynInstrs: g.DynInstrs * 10,
			Inject:       &funcsim.Injection{Mode: funcsim.InjectDst, Index: idx, Bit: 30},
		})
		ps.Sites++
		if run.Err != nil || run.TimedOut {
			ps.Crashes++
			continue
		}
		actual := !bytesEq(run.Output, g.Output)
		switch {
		case pred.OutputTainted && actual:
			ps.TruePos++
		case !pred.OutputTainted && !actual:
			ps.TrueNeg++
		case pred.OutputTainted && !actual:
			ps.FalsePos++
		default:
			ps.FalseNeg++
		}
	}
	if ps.Sites > 0 {
		ps.MeanTaintedInstrs = sumInstrs / float64(ps.Sites)
		ps.MeanTaintedThreads = sumThreads / float64(ps.Sites)
	}
	t := report.Table{
		Title:  fmt.Sprintf("Error-propagation prediction vs real injection: %s (%d sites)", appName, n),
		Header: []string{"Quantity", "Value"},
	}
	t.AddRow("prediction accuracy", report.Pct(ps.Accuracy()))
	t.AddRow("true SDC / true masked", fmt.Sprintf("%d / %d", ps.TruePos, ps.TrueNeg))
	t.AddRow("false SDC / missed SDC", fmt.Sprintf("%d / %d", ps.FalsePos, ps.FalseNeg))
	t.AddRow("crashed sites (not predicted)", fmt.Sprint(ps.Crashes))
	t.AddRow("mean tainted instructions", fmt.Sprintf("%.1f", ps.MeanTaintedInstrs))
	t.AddRow("mean tainted threads", fmt.Sprintf("%.1f", ps.MeanTaintedThreads))
	t.AddFooter("§VI: \"conducting fast error propagation analysis across instructions\" — one")
	t.AddFooter("taint run predicts the SDC class; false positives are logical masking (e.g. a")
	t.AddFooter("flipped bit that does not change the stored result), which reachability cannot see.")
	return ps, t.String(), nil
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ECCAblation measures a kernel's chip AVF under different protection
// choices — the "targeted protection strategies" design question the paper's
// §II-A motivates. Each scenario protects a set of structures with SEC-DED
// and re-runs the per-structure campaigns under the multi-bit mix given by
// burst (1 = pure single-bit, where ECC removes everything it covers).
func (s *Study) ECCAblation(appName, kernel string, burst int) (string, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return "", err
	}
	scenarios := []struct {
		name string
		sts  []gpu.Structure
	}{
		{"unprotected", nil},
		{"ECC on RF", []gpu.Structure{gpu.RF}},
		{"ECC on caches", []gpu.Structure{gpu.L1D, gpu.L1T, gpu.L2}},
		{"ECC everywhere", gpu.Structures[:]},
	}
	t := report.Table{
		Title:  fmt.Sprintf("Protection ablation: %s %s chip AVF (burst=%d)", appName, kernel, burst),
		Header: []string{"Scenario", "AVF.SDC", "AVF.Timeout", "AVF.DUE", "AVF"},
	}
	for _, sc := range scenarios {
		cfg := s.Cfg.WithECC(sc.sts...)
		// golden runs are protection-independent (ECC only changes fault
		// outcomes), so reuse the cached golden with the modified config
		g := &microfi.GoldenRun{Res: e.MicroG.Res, Cfg: cfg}
		var structs []metrics.StructAVF
		for _, st := range gpu.Structures {
			tgt := microfi.Target{Structure: st, Kernel: kernel, Burst: burst}
			seed := s.Seed + int64(hashKey(fmt.Sprintf("ecc|%s|%s|%d|%s|%d", appName, kernel, st, sc.name, burst)))
			tl := campaign.Run(campaign.Options{Runs: s.Runs, Seed: seed, Workers: s.Workers},
				func(run int, rng *rand.Rand) faults.Result {
					return microfi.Inject(e.Job, g, tgt, rng)
				})
			structs = append(structs, metrics.NewStructAVF(st, tl, tgt.DF(g)))
		}
		chip := metrics.ChipAVF(s.Cfg, structs)
		t.AddRow(sc.name, report.Pct(chip.SDC), report.Pct(chip.Timeout), report.Pct(chip.DUE), report.Pct(chip.Total()))
	}
	t.AddFooter("SEC-DED: single-bit corrected, double-bit detected (DUE), wider bursts escape")
	return t.String(), nil
}

// MultiBitAblation runs the §II-A multi-bit discussion as an experiment:
// AVF of a kernel under 1..width adjacent-bit bursts in one structure.
func (s *Study) MultiBitAblation(appName, kernel string, st gpu.Structure, widths []int) ([]metrics.Breakdown, string, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return nil, "", err
	}
	var out []metrics.Breakdown
	t := report.Table{
		Title:  fmt.Sprintf("Multi-bit ablation: %s %s, %s", appName, kernel, st),
		Header: []string{"Burst width", "SDC", "Timeout", "DUE", "FR×DF"},
	}
	for _, w := range widths {
		tgt := microfi.Target{Structure: st, Kernel: kernel, Burst: w}
		seed := s.Seed + int64(hashKey(fmt.Sprintf("burst|%s|%s|%d|%d", appName, kernel, st, w)))
		tl := campaignRun(s, e, tgt, seed)
		b := metrics.FromTally(tl).Scale(tgt.DF(e.MicroG))
		out = append(out, b)
		t.AddRow(fmt.Sprint(w), report.Pct(b.SDC), report.Pct(b.Timeout), report.Pct(b.DUE), report.Pct(b.Total()))
	}
	return out, t.String(), nil
}
