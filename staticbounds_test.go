// Tests for the static AVF bounds artifact: on every shipped app the flow
// interval engine's static bracket must contain the AVF measured by a real
// injection campaign, and the per-app × per-structure table is exportable
// as the CI artifact (GPUREL_STATICBOUNDS_JSON).
package gpurel

import (
	"encoding/json"
	"math/rand"
	"os"
	"strings"
	"testing"

	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/kernels"
	"gpurel/internal/microfi"
)

// staticBoundsRow is one artifact line: an app × structure cell with the
// static bracket and the campaign-measured AVF it must contain. Lower and
// Upper are the bracket for the recorded campaign: Lower is 0 (the engine
// proves deadness, never ACE-ness) and Upper is the fraction of the
// campaign's runs the interval engine could not pre-classify Masked — a
// deterministic bound, since every failing run must have hit a
// statically-live site. SweepLower/SweepUpper are the analytic cycle-sweep
// expectations of the same quantities under the injector's site
// distribution (what gpudis -avf-bounds prints); the measured AVF must
// agree with SweepUpper up to the campaign's 99% CI margin.
type staticBoundsRow struct {
	App        string  `json:"app"`
	Structure  string  `json:"structure"`
	Supported  bool    `json:"supported"`
	Lower      float64 `json:"lower"`
	Upper      float64 `json:"upper"`
	SweepLower float64 `json:"sweep_lower"`
	SweepUpper float64 `json:"sweep_upper"`
	Measured   float64 `json:"measured"`
	Runs       int     `json:"runs"`
	Pruned     int     `json:"pruned"`
}

// TestStaticBoundsArtifact is the acceptance artifact test: for every app
// and every structure the interval engine supports (RF, SMEM), the static
// bracket must contain the measured AVF — lower ≤ measured ≤ upper. The
// measured AVF is the campaign failure rate (non-Masked fraction); the
// campaign runs through the interval prune, whose tallies are property-
// tested bit-identical to brute force, so the prune fraction and the
// measurement come from the same runs and the bracket check is exact, not
// statistical. The analytic sweep bound is validated against the same
// measurement within the campaign's 99% CI margin. Unsupported structures
// (caches, control state) report the trivial [0, 1] bracket for table
// completeness. When GPUREL_STATICBOUNDS_JSON names a path the full table
// is written as the CI artifact.
func TestStaticBoundsArtifact(t *testing.T) {
	runs := envInt("GPUREL_STATICBOUNDS_RUNS", 120)
	only := os.Getenv("GPUREL_STATICBOUNDS_APPS")
	cfg := gpu.Volta()
	var rows []staticBoundsRow
	for _, app := range kernels.All() {
		if only != "" && only != "all" && !strings.Contains(","+only+",", ","+app.Name+",") {
			continue
		}
		job := app.Build()
		g, err := microfi.Golden(job, cfg)
		if err != nil {
			t.Fatal(err)
		}
		si, err := microfi.TraceStatic(job, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range []gpu.Structure{gpu.RF, gpu.SMEM} {
			b := si.Bounds(st, "")
			if !b.Supported {
				t.Errorf("%s/%v: interval engine reports unsupported", app.Name, st)
				continue
			}
			tgt := microfi.Target{Structure: st}
			counters := &adaptive.Counters{}
			tl := campaign.Run(campaign.Options{Runs: runs, Seed: 1},
				counters.Instrument(func(run int, rng *rand.Rand) (faults.Result, bool) {
					return microfi.InjectStatic(job, g, si, tgt, rng)
				}))
			pruned := int(counters.Pruned.Load())
			upper := float64(tl.N-pruned) / float64(tl.N)
			measured := tl.FR()
			if !(0 <= measured && measured <= upper) {
				t.Errorf("%s/%v: measured AVF %.4f outside static bracket [0, %.4f] (%d of %d runs pruned)",
					app.Name, st, measured, upper, pruned, tl.N)
			}
			if margin := tl.Margin99(); measured > b.Upper+margin {
				t.Errorf("%s/%v: measured AVF %.4f above analytic sweep upper %.4f beyond the ±%.4f 99%% margin",
					app.Name, st, measured, b.Upper, margin)
			}
			rows = append(rows, staticBoundsRow{
				App: app.Name, Structure: st.String(), Supported: true,
				Lower: 0, Upper: upper, SweepLower: b.Lower, SweepUpper: b.Upper,
				Measured: measured, Runs: tl.N, Pruned: pruned,
			})
		}
		// Structures outside the engine's reach: documented fall-through to
		// the trivial bracket, recorded (not measured) for table completeness.
		for _, st := range []gpu.Structure{gpu.L1D, gpu.L1T, gpu.L2} {
			b := si.Bounds(st, "")
			if b.Supported || b.Lower != 0 || b.Upper != 1 {
				t.Errorf("%s/%v: want unsupported [0, 1] bracket, got %+v", app.Name, st, b)
			}
			rows = append(rows, staticBoundsRow{App: app.Name, Structure: st.String(),
				Lower: b.Lower, Upper: b.Upper, SweepLower: b.Lower, SweepUpper: b.Upper})
		}
	}
	if only == "" || only == "all" {
		if want := len(kernels.All()) * 5; len(rows) != want {
			t.Fatalf("table has %d rows, want %d", len(rows), want)
		}
	}

	// Determinism: re-tracing reproduces the first app's sweep bracket bit
	// for bit.
	first := kernels.All()[0]
	si2, err := microfi.TraceStatic(first.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []gpu.Structure{gpu.RF, gpu.SMEM} {
		if a, b := si2.Bounds(st, ""), rowFor(rows, first.Name, st.String()); b != nil &&
			(a.Lower != b.SweepLower || a.Upper != b.SweepUpper) {
			t.Errorf("%s/%v bracket not reproducible: [%v, %v] != [%v, %v]",
				first.Name, st, a.Lower, a.Upper, b.SweepLower, b.SweepUpper)
		}
	}

	if path := os.Getenv("GPUREL_STATICBOUNDS_JSON"); path != "" {
		raw, err := json.MarshalIndent(map[string]any{"table": "static_avf_bounds", "rows": rows}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func rowFor(rows []staticBoundsRow, app, structure string) *staticBoundsRow {
	for i := range rows {
		if rows[i].App == app && rows[i].Structure == structure {
			return &rows[i]
		}
	}
	return nil
}
