package gpurel

import (
	"strings"
	"testing"

	"gpurel/internal/gpu"
	"gpurel/internal/metrics"
)

// synthPoints builds a fabricated hardened-study dataset so the Figure 7-11
// renderers can be tested without campaigns.
func synthPoints() []HardenedPoint {
	var pts []HardenedPoint
	mk := func(app, k string, avf, avfH, svf, svfH float64) HardenedPoint {
		p := HardenedPoint{
			ID:          KernelID{App: app, Kernel: k},
			AVF:         metrics.Breakdown{SDC: avf / 2, DUE: avf / 2},
			AVFHardened: metrics.Breakdown{DUE: avfH},
			SVF:         metrics.Breakdown{SDC: svf},
			SVFHardened: metrics.Breakdown{DUE: svfH},
			CtrlPct:     0.01,
			CtrlPctH:    0.02,
		}
		for _, st := range gpu.Structures {
			p.StructAVF = append(p.StructAVF, metrics.StructAVF{Structure: st, AVF: metrics.Breakdown{SDC: avf / 5}})
			p.StructAVFHardened = append(p.StructAVFHardened, metrics.StructAVF{Structure: st, AVF: metrics.Breakdown{DUE: avfH / 5}})
		}
		return p
	}
	pts = append(pts,
		mk("LUD", "K2", 0.02, 0.01, 0.9, 0.3),
		mk("SCP", "K1", 0.015, 0.022, 0.91, 0.26),
		mk("NW", "K2", 0.01, 0.002, 0.84, 0.55),
		mk("BackProp", "K2", 0.019, 0.006, 0.86, 0.47),
		mk("SRADv1", "K2", 0.016, 0.005, 0.83, 0.34),
		mk("K-Means", "K2", 0.0075, 0.016, 0.38, 0.26),
	)
	return pts
}

func TestFigureRenderers(t *testing.T) {
	pts := synthPoints()
	cases := []struct {
		name string
		out  string
		want []string
	}{
		{"fig7", Figure7(pts), []string{"Figure 7", "SCP K1", "SVF w/o", "AVF w/"}},
		{"fig8", Figure8(pts), []string{"Figure 8", "AVF.SDC w/o", "SRADv1 K2"}},
		{"fig9", Figure9(pts), []string{"Figure 9", "SVF.T+D w/", "AVF.T+D w/o"}},
		{"fig10", Figure10(pts), []string{"Figure 10 (RF)", "Figure 10 (SMEM)", "Figure 10 (L1D)", "Figure 10 (L2)", "K-Means K2"}},
		{"fig11", Figure11(pts), []string{"Figure 11", "w/o Hardening", "w/ Hardening"}},
	}
	for _, c := range cases {
		for _, w := range c.want {
			if !strings.Contains(c.out, w) {
				t.Errorf("%s: missing %q", c.name, w)
			}
		}
	}
}

func TestFigure12Static(t *testing.T) {
	a, txt := Figure12()
	if len(a.Uses) != 2 || a.KilledAt != 6 {
		t.Errorf("Figure 12 analysis = %+v", a)
	}
	if !strings.Contains(txt, "fault injected here") {
		t.Error("annotation missing")
	}
}

func TestKernelIDLabel(t *testing.T) {
	id := KernelID{App: "SRADv1", Kernel: "K4"}
	if id.Label() != "SRADv1 K4" {
		t.Errorf("label = %q", id.Label())
	}
	if len(SortedAppNames()) != 11 {
		t.Error("expected 11 app names")
	}
}

func TestSmallAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns")
	}
	s := NewStudy(15, 5)

	// ACE comparison on a small app
	c, txt, err := s.CompareACE("VA")
	if err != nil {
		t.Fatal(err)
	}
	if c.AVFACE <= 0 || c.PVF <= 0 || !strings.Contains(txt, "ACE analysis") {
		t.Errorf("ACE comparison incomplete: %+v", c)
	}

	// multi-bit ablation produces one breakdown per width
	bs, txt2, err := s.MultiBitAblation("VA", "K1", gpu.RF, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 || !strings.Contains(txt2, "Burst width") {
		t.Errorf("multi-bit ablation incomplete")
	}

	// ECC ablation: "ECC everywhere" must zero single-bit chip AVF
	txt3, err := s.ECCAblation("VA", "K1", 1)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(txt3, "\n")
	var everywhere string
	for _, l := range lines {
		if strings.HasPrefix(l, "ECC everywhere") {
			everywhere = l
		}
	}
	if everywhere == "" || !strings.Contains(everywhere, "0.00%") {
		t.Errorf("ECC everywhere should zero the single-bit AVF: %q", everywhere)
	}

	// input-size ablation renders one row per size
	txt4, err := s.InputSizeAblation([]int{512, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt4, "512") || !strings.Contains(txt4, "1024") {
		t.Errorf("input-size ablation missing rows:\n%s", txt4)
	}

	// propagation study on a small sample
	ps, txt5, err := s.RunPropagationStudy("VA", 10)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Sites != 10 || !strings.Contains(txt5, "prediction accuracy") {
		t.Errorf("propagation study incomplete: %+v", ps)
	}
	if ps.FalseNeg > 0 {
		t.Errorf("propagation must not miss SDCs (sound over-approximation), got %d", ps.FalseNeg)
	}

	// speed comparison returns positive durations
	micro, soft, err := s.SpeedComparison("VA", 2)
	if err != nil {
		t.Fatal(err)
	}
	if micro <= 0 || soft <= 0 {
		t.Error("speed comparison returned non-positive durations")
	}
}

func TestFigure3SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns")
	}
	s := NewStudy(10, 2)
	pms, txt, err := s.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(pms) != 3 {
		t.Fatalf("Figure 3 has 3 panes, got %d", len(pms))
	}
	for _, pm := range pms {
		if len(pm.Metrics) != 18 {
			t.Errorf("%s vs %s: %d metrics, want 18", pm.KernelA, pm.KernelB, len(pm.Metrics))
		}
	}
	if !strings.Contains(txt, "HotSpot K1 vs LUD K1") {
		t.Error("missing pane 3a")
	}
}

func TestBudgetedProtection(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns")
	}
	s := NewStudy(25, 9)
	apps := []string{"VA", "SCP", "LUD"}
	bp, txt, err := s.RunBudgetedProtection(apps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.ChosenBySVF) != 1 || len(bp.ChosenByAVF) != 1 {
		t.Fatalf("policy sets wrong: %+v", bp)
	}
	if bp.ResidualSVFPolicy < 0 || bp.ResidualAVFPolicy < 0 {
		t.Error("negative residuals")
	}
	if !strings.Contains(txt, "Budgeted protection") {
		t.Error("missing table title")
	}
}
