// Error-propagation analysis (paper §VI): the future-work direction —
// "software-level fault injection may still have its value, for example,
// conducting fast error propagation analysis across instructions".
//
// This example seeds taint at individual dynamic instructions of a
// benchmark, tracks it through registers, predicates, shared and global
// memory, and uses reachability of the output as an SDC predictor — then
// validates the prediction against real injections at the same sites
// (the Trident-style accuracy experiment).
//
// Run with: go run ./examples/error_propagation [app]
package main

import (
	"fmt"
	"log"
	"os"

	"gpurel"
	"gpurel/internal/funcsim"
	"gpurel/internal/kernels"
	"gpurel/internal/propagate"
)

func main() {
	appName := "VA"
	if len(os.Args) > 1 {
		appName = os.Args[1]
	}
	app, err := kernels.ByName(appName)
	if err != nil {
		log.Fatal(err)
	}
	job := app.Build()
	g := funcsim.Run(job, funcsim.Options{CollectWindows: true})
	if g.Err != nil {
		log.Fatal(g.Err)
	}

	// 1. trace a handful of individual faults
	fmt.Printf("%s: %d dynamic register writes are injectable sites\n\n", appName, g.DstCands)
	for k := int64(0); k < 5; k++ {
		idx := (k*2654435761 + 17) % g.DstCands
		r, err := propagate.Analyze(job, propagate.Seed{Index: idx})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("site %8d: %4d tainted instructions, %3d threads, %5d global bytes → predicted %s\n",
			idx, r.TaintedInstrs, r.TaintedThreads, r.TaintedGlobalBytes, r.PredictedOutcome)
	}

	// 2. validate the predictor against real injections
	study := gpurel.NewStudy(100, 11)
	ps, txt, err := study.RunPropagationStudy(appName, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(txt)
	if ps.FalseNeg == 0 {
		fmt.Println("no missed SDCs: reachability over-approximates corruption, so the")
		fmt.Println("predictor is sound — its errors are all logical-masking false alarms.")
	}
}
