// TMR case study (paper §IV): harden a kernel with thread-level Triple
// Modular Redundancy and compare its vulnerability before and after — at
// both abstraction layers.
//
// The run demonstrates the paper's Insight #5: under software-level
// evaluation the SDCs are (almost) eliminated, but DUEs grow because the
// voter converts corruption into detected errors, and the cross-layer AVF
// can even *increase* for some kernels despite the 3× execution cost.
//
// Run with: go run ./examples/tmr_study [app] [kernel]
package main

import (
	"fmt"
	"log"
	"os"

	"gpurel"
)

func main() {
	app, kernel := "SCP", "K1"
	if len(os.Args) > 2 {
		app, kernel = os.Args[1], os.Args[2]
	}
	study := gpurel.NewStudy(200, 7)

	fmt.Printf("TMR case study: %s %s (200 injections per point)\n\n", app, kernel)

	svf, err := study.KernelSVF(app, kernel, false)
	check(err)
	svfH, err := study.KernelSVF(app, kernel, true)
	check(err)
	avf, _, err := study.KernelAVF(app, kernel, false)
	check(err)
	avfH, _, err := study.KernelAVF(app, kernel, true)
	check(err)

	row := func(name string, sdc, timeout, due float64) {
		fmt.Printf("  %-22s SDC %6.2f%%   Timeout %6.2f%%   DUE %6.2f%%   total %6.2f%%\n",
			name, 100*sdc, 100*timeout, 100*due, 100*(sdc+timeout+due))
	}
	fmt.Println("software-level (SVF):")
	row("unprotected", svf.SDC, svf.Timeout, svf.DUE)
	row("TMR-hardened", svfH.SDC, svfH.Timeout, svfH.DUE)
	fmt.Println("cross-layer (AVF):")
	row("unprotected", avf.SDC, avf.Timeout, avf.DUE)
	row("TMR-hardened", avfH.SDC, avfH.Timeout, avfH.DUE)

	fmt.Println()
	switch {
	case svfH.SDC < svf.SDC && svfH.DUE >= svf.DUE:
		fmt.Println("→ SVF view: TMR removed SDCs but DUEs did not go away — the voter")
		fmt.Println("  turns corruptions into detected-unrecoverable errors (Insight #5).")
	case svfH.SDC >= svf.SDC:
		fmt.Println("→ SVF SDCs did not drop at this sample size; rerun with more runs.")
	}
	if avfH.Total() > avf.Total() {
		fmt.Println("→ AVF view: the hardened kernel is MORE vulnerable than the plain one —")
		fmt.Println("  exactly the wrong-protection pitfall the paper warns about (§IV-B).")
	}
	if avfH.SDC > 0 {
		fmt.Println("→ AVF still sees SDCs after TMR: hardware-induced corruptions of output")
		fmt.Println("  data that no software-visible mechanism can vote away (§IV-B).")
	}

	// quantify the protection overhead
	e, err := study.Eval(app)
	check(err)
	fmt.Printf("\nexecution cost: %d → %d cycles (%.2f×)\n",
		e.MicroG.Res.Cycles, e.MicroGTMR.Res.Cycles,
		float64(e.MicroGTMR.Res.Cycles)/float64(e.MicroG.Res.Cycles))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
