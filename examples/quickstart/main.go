// Quickstart: assess one GPU workload at both abstraction layers.
//
// It builds the vectorAdd benchmark, runs it on the cycle-level
// microarchitecture simulator and the functional executor, then runs one
// small AVF campaign (microarchitecture-level fault injection into every
// hardware structure) and one SVF campaign (software-level injection into
// destination registers), and prints the two vulnerability estimates —
// reproducing, on one workload, the paper's central measurement.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpurel"
	"gpurel/internal/funcsim"
	"gpurel/internal/gpu"
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
)

func main() {
	app, err := kernels.ByName("VA")
	if err != nil {
		log.Fatal(err)
	}
	job := app.Build()

	// 1. Run the workload on both engines.
	micro := sim.Run(job, gpu.Volta(), sim.Options{})
	if micro.Err != nil {
		log.Fatal(micro.Err)
	}
	soft := funcsim.Run(job, funcsim.Options{})
	if soft.Err != nil {
		log.Fatal(soft.Err)
	}
	fmt.Printf("vectorAdd: %d cycles (microarchitectural), %d dynamic instructions (functional)\n",
		micro.Cycles, soft.DynInstrs)
	if err := app.Check(micro.Output); err != nil {
		log.Fatal("output check: ", err)
	}
	fmt.Println("outputs verified against the host reference")

	// 2. Measure AVF (cross-layer ground truth) and SVF (software-only).
	study := gpurel.NewStudy(200, 1)
	avf, structs, err := study.KernelAVF("VA", "K1", false)
	if err != nil {
		log.Fatal(err)
	}
	svf, err := study.KernelSVF("VA", "K1", false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nSVF  (NVBitFI-style):      %6.2f%%  [SDC %.2f%%, Timeout %.2f%%, DUE %.2f%%]\n",
		100*svf.Total(), 100*svf.SDC, 100*svf.Timeout, 100*svf.DUE)
	fmt.Printf("AVF  (gpuFI-style, chip):  %6.2f%%  [SDC %.2f%%, Timeout %.2f%%, DUE %.2f%%]\n",
		100*avf.Total(), 100*avf.SDC, 100*avf.Timeout, 100*avf.DUE)
	fmt.Println("\nPer-structure AVF (FR × derating factor):")
	for _, s := range structs {
		fmt.Printf("  %-5s DF=%.4f  AVF=%6.3f%%\n", s.Structure, s.DF, 100*s.AVF.Total())
	}
	fmt.Println("\nThe gap between the two numbers is the hardware masking that")
	fmt.Println("software-level injection cannot see (paper §III-A).")
}
