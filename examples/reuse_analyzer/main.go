// Register reuse analyzer (paper §V-B, Figure 12).
//
// Software-level injectors corrupt a destination register *value*; a flavour
// of the methodology corrupts only a single operand use, missing the
// repetitive corruption of every later read. This example:
//
//  1. reproduces the paper's Figure 12 worked example,
//  2. reports the reuse fanout of a real kernel (how many later reads each
//     produced value has before being overwritten), and
//  3. quantifies the difference empirically: SVF with persistent destination
//     corruption vs the transient single-use model on the same kernel.
//
// Run with: go run ./examples/reuse_analyzer
package main

import (
	"fmt"
	"log"
	"sort"

	"gpurel"
	"gpurel/internal/reuse"
	"gpurel/internal/softfi"
)

func main() {
	// 1. the paper's example
	_, annotated := gpurel.Figure12()
	fmt.Println(annotated)

	// 2. static reuse fanout of a real kernel (scalarProd: its dot-product
	// accumulator and strided cursor are re-read every loop iteration)
	study := gpurel.NewStudy(250, 5)
	e, err := study.Eval("SCP")
	check(err)
	prog := e.Job.Steps[0].Launch.Kernel
	fan := reuse.Fanout(prog)
	var pcs []int
	total := 0
	for pc, n := range fan {
		pcs = append(pcs, pc)
		total += n
	}
	sort.Ints(pcs)
	fmt.Printf("reuse fanout of %s (reads of each produced value before overwrite):\n", prog.Name)
	for _, pc := range pcs {
		if fan[pc] > 0 {
			fmt.Printf("  #%-3d %-40s → %d later reads\n", pc, prog.Code[pc].String(), fan[pc])
		}
	}
	fmt.Printf("mean fanout: %.2f reads per produced value\n\n", float64(total)/float64(len(fan)))

	// 3. persistent vs transient injection on the same kernel
	persistent, err := study.SoftTally("SCP", "K1", softfi.SVF, false)
	check(err)
	transient, err := study.SoftTally("SCP", "K1", softfi.SVFUse, false)
	check(err)
	fmt.Printf("SVF, persistent destination corruption (NVBitFI model): %6.2f%%\n", 100*persistent.FR())
	fmt.Printf("SVF, transient single-use corruption  (§V-B blind spot): %6.2f%%\n", 100*transient.FR())
	if transient.FR() < persistent.FR() {
		fmt.Println("\n→ ignoring register reuse underestimates vulnerability: every later")
		fmt.Println("  read of the corrupted register repeats the fault (Figure 12).")
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
