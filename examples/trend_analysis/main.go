// Trend analysis (paper §III): do AVF and SVF rank workloads the same way?
//
// The example measures a set of applications at both layers, classifies
// every pair as trend-consistent or trend-opposite (Table I), and then acts
// out the paper's budgeted-protection scenario: pick the "most vulnerable"
// application according to each metric and show how the two methodologies
// would send the protection budget to different places.
//
// Run with: go run ./examples/trend_analysis
package main

import (
	"fmt"
	"log"
	"sort"

	"gpurel"
	"gpurel/internal/trend"
)

func main() {
	// a subset keeps the demo quick; cmd/avfsvf -table 1 runs all 11
	apps := []string{"SRADv1", "K-Means", "HotSpot", "LUD", "SCP", "VA"}
	study := gpurel.NewStudy(150, 3)

	avf := map[string]float64{}
	svf := map[string]float64{}
	for _, a := range apps {
		b, err := study.AppAVF(a, false)
		check(err)
		s, err := study.AppSVF(a, false)
		check(err)
		avf[a], svf[a] = b.Total(), s.Total()
		fmt.Printf("%-10s AVF %6.3f%%   SVF %6.2f%%\n", a, 100*b.Total(), 100*s.Total())
	}

	consistent, opposite, pairs := trend.Compare(apps, avf, svf)
	fmt.Printf("\npairs: %d consistent, %d opposite\n", consistent, opposite)
	for _, p := range pairs {
		if !p.Consistent {
			fmt.Printf("  opposite trend: %s vs %s (AVF says %s is worse, SVF says %s)\n",
				p.A, p.B, worse(avf, p.A, p.B), worse(svf, p.A, p.B))
		}
	}

	// budgeted protection: who gets the budget?
	rankBy := func(m map[string]float64) []string {
		out := append([]string(nil), apps...)
		sort.Slice(out, func(i, j int) bool { return m[out[i]] > m[out[j]] })
		return out
	}
	byAVF, bySVF := rankBy(avf), rankBy(svf)
	fmt.Printf("\nprotection priority by SVF (software view): %v\n", bySVF[:3])
	fmt.Printf("protection priority by AVF (ground truth):  %v\n", byAVF[:3])
	if bySVF[0] != byAVF[0] {
		fmt.Printf("\n→ a designer following SVF would protect %s first, but the\n", bySVF[0])
		fmt.Printf("  cross-layer ground truth says %s is the most vulnerable —\n", byAVF[0])
		fmt.Println("  the budgeted-protection pitfall of §III-A.")
	}
}

func worse(m map[string]float64, a, b string) string {
	if m[a] > m[b] {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
