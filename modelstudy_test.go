// Tests for the cross-model outcome study: fault specs participate in point
// identity exactly when non-default, the model-aware memo shares entries
// with the legacy path, and the cross-model table is deterministic and
// exportable as the CI artifact (GPUREL_FAULTMODEL_JSON).
package gpurel

import (
	"encoding/json"
	"os"
	"testing"

	"gpurel/internal/faultmodel"
	"gpurel/internal/gpu"
)

// TestPointSeedFaultIdentity: the legacy seed derivation is untouched for
// default fault specs (nil group, or any spelling of the transient
// single-bit flip), every distinct model reseeds, and two spellings of the
// same fault collide — the property that keeps daemon/CLI campaigns
// comparable and pre-fault studies bit-identical.
func TestPointSeedFaultIdentity(t *testing.T) {
	base := PointSpec{Layer: LayerMicro, App: "VA", Kernel: "K1", Structure: gpu.RF}
	legacy := PointSeed(1, base)

	defaults := []*faultmodel.Spec{
		nil,
		{},
		{Model: faultmodel.ModelTransient},
		{Model: faultmodel.ModelTransient, Width: 1},
	}
	for _, f := range defaults {
		p := base
		p.Fault = f
		if got := PointSeed(1, p); got != legacy {
			t.Errorf("default fault spec %+v changed the seed: %d != %d", f, got, legacy)
		}
	}

	variants := []faultmodel.Spec{
		{Model: faultmodel.ModelTransient, Width: 2},
		{Model: faultmodel.ModelStuck, Stuck: faultmodel.Ptr(0)},
		{Model: faultmodel.ModelStuck, Stuck: faultmodel.Ptr(1)},
		{Model: faultmodel.ModelMBU, Width: 2, Lines: 2},
	}
	seen := map[int64]string{legacy: "default"}
	for _, f := range variants {
		f := f
		p := base
		p.Fault = &f
		got := PointSeed(1, p)
		if prev, dup := seen[got]; dup {
			t.Errorf("fault %s collides with %s on seed %d", f.Canonical(), prev, got)
		}
		seen[got] = f.Canonical()
	}

	// Two spellings of one fault (explicit vs normalized width) must agree.
	a, b := base, base
	a.Fault = &faultmodel.Spec{Model: faultmodel.ModelMBU, Width: 2, Lines: 2}
	b.Fault = &faultmodel.Spec{Model: faultmodel.ModelMBU, Width: 2, Lines: 2}
	if PointSeed(1, a) != PointSeed(1, b) {
		t.Error("identical fault specs derived different seeds")
	}
}

// TestMicroTallyModelDefaultParity: the model-aware entry point with the
// default spec is the legacy MicroTally — same seed, same memo slot, same
// tally.
func TestMicroTallyModelDefaultParity(t *testing.T) {
	s := NewStudy(20, 1)
	want, _, err := s.MicroTally("VA", "K1", gpu.RF, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.MicroTallyModel("VA", "K1", gpu.RF, faultmodel.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("MicroTallyModel(default) %+v != MicroTally %+v", got, want)
	}
}

// TestFaultModelTableArtifact generates the cross-model outcome table on a
// small campaign, pins its deterministic shape (structures × models in
// canonical order, every cell populated), and — when GPUREL_FAULTMODEL_JSON
// names a path — writes the machine-readable table for the CI artifact.
func TestFaultModelTableArtifact(t *testing.T) {
	runs := envInt("GPUREL_FAULTMODEL_RUNS", 15)
	s := NewStudy(runs, 1)
	apps := []string{"VA"}
	if v := os.Getenv("GPUREL_FAULTMODEL_APPS"); v == "all" {
		apps = nil
	}
	rows, txt, err := s.FaultModelFigure(apps)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(gpu.Structures)*len(StorageFaultSpecs()) + len(gpu.ControlStructures)*len(ControlFaultSpecs())
	if len(rows) != wantRows {
		t.Fatalf("table has %d rows, want %d", len(rows), wantRows)
	}
	i := 0
	check := func(st gpu.Structure, f faultmodel.Spec) {
		r := rows[i]
		i++
		if r.Structure != st.String() || r.Model != f.Label() {
			t.Errorf("row %d is (%s, %s), want (%v, %s)", i-1, r.Structure, r.Model, st, f.Label())
		}
		if r.Tally.N == 0 {
			t.Errorf("row (%s, %s) tallied no runs", r.Structure, r.Model)
		}
		if r.Hardened.N == 0 {
			t.Errorf("row (%s, %s) tallied no hardened runs", r.Structure, r.Model)
		}
		if fr := r.FR(); fr < 0 || fr > 1 {
			t.Errorf("row (%s, %s) failure rate %v out of range", r.Structure, r.Model, fr)
		}
		if fr := r.FRHardened(); fr < 0 || fr > 1 {
			t.Errorf("row (%s, %s) hardened failure rate %v out of range", r.Structure, r.Model, fr)
		}
	}
	for _, st := range gpu.Structures {
		for _, f := range StorageFaultSpecs() {
			check(st, f)
		}
	}
	for _, st := range gpu.ControlStructures {
		for _, f := range ControlFaultSpecs() {
			check(st, f)
		}
	}
	if txt == "" {
		t.Error("empty rendered table")
	}

	// Determinism: a fresh study reproduces the table bit for bit.
	s2 := NewStudy(runs, 1)
	rows2, err := s2.FaultModelTable(apps)
	if err != nil {
		t.Fatal(err)
	}
	for j := range rows {
		if rows[j] != rows2[j] {
			t.Errorf("row %d not reproducible: %+v != %+v", j, rows[j], rows2[j])
		}
	}

	if path := os.Getenv("GPUREL_FAULTMODEL_JSON"); path != "" {
		out, err := json.MarshalIndent(map[string]any{
			"table": "faultmodels",
			"runs":  runs,
			"apps":  apps,
			"rows":  rows,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
