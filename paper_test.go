package gpurel

import (
	"math/rand"
	"testing"

	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/microfi"
	"gpurel/internal/sim"
	"gpurel/internal/softfi"
)

// TestScaleSeparation pins Figure 1's axis split: the full-system AVF is
// always far below the software-only SVF, because AVF includes all hardware
// masking (§III-A).
func TestScaleSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns")
	}
	s := NewStudy(60, 21)
	for _, app := range []string{"VA", "SCP", "HotSpot"} {
		avf, err := s.AppAVF(app, false)
		if err != nil {
			t.Fatal(err)
		}
		svf, err := s.AppSVF(app, false)
		if err != nil {
			t.Fatal(err)
		}
		if avf.Total() >= svf.Total() {
			t.Errorf("%s: AVF %.3f >= SVF %.3f", app, avf.Total(), svf.Total())
		}
		if svf.Total() < 0.2 {
			t.Errorf("%s: SVF %.3f implausibly low", app, svf.Total())
		}
	}
}

// TestTMRInsight5 pins §IV on SCP K1: TMR eliminates SVF-visible SDCs while
// DUEs persist, and the AVF-level DUE share increases.
func TestTMRInsight5(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns")
	}
	s := NewStudy(150, 7)
	svf, err := s.KernelSVF("SCP", "K1", false)
	if err != nil {
		t.Fatal(err)
	}
	svfH, err := s.KernelSVF("SCP", "K1", true)
	if err != nil {
		t.Fatal(err)
	}
	if svf.SDC == 0 {
		t.Fatal("plain SVF shows no SDCs; sample size too small")
	}
	if svfH.SDC > 0.05*svf.SDC {
		t.Errorf("TMR should (nearly) eliminate SVF SDCs: %.3f → %.3f", svf.SDC, svfH.SDC)
	}
	if svfH.DUE == 0 {
		t.Error("DUEs must persist under TMR at the software level (the voter detects)")
	}

	avf, _, err := s.KernelAVF("SCP", "K1", false)
	if err != nil {
		t.Fatal(err)
	}
	avfH, _, err := s.KernelAVF("SCP", "K1", true)
	if err != nil {
		t.Fatal(err)
	}
	if avfH.DUE <= avf.DUE {
		t.Errorf("hardening should raise the AVF DUE share on SCP K1: %.4f → %.4f", avf.DUE, avfH.DUE)
	}
}

// TestResidualSDCMechanism demonstrates §IV-B's hardware-only SDC: a fault
// in an L2 line that holds the *voted* output after the voting kernel has
// written it is invisible to any software-level method, yet corrupts the
// output of the hardened application.
func TestResidualSDCMechanism(t *testing.T) {
	s := NewStudy(10, 3)
	e, err := s.Eval("VA")
	if err != nil {
		t.Fatal(err)
	}
	g := e.MicroGTMR
	sdc := 0
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		res := sim.Run(e.JobTMR, s.Cfg, sim.Options{
			MaxCycles: g.Res.Cycles * 10,
			AtCycle:   g.Res.Cycles - 1, // after the vote, before the final flush
			OnCycle: func(m *sim.Machine) {
				var dirty []int
				for i := 0; i < m.L2.NumLines(); i++ {
					if ln := m.L2.LineAt(i); ln.Valid && ln.Dirty {
						dirty = append(dirty, i)
					}
				}
				if len(dirty) == 0 {
					return
				}
				line := dirty[rng.Intn(len(dirty))]
				m.L2.FlipBit(line, uint32(rng.Intn(64)), uint8(rng.Intn(8)))
			},
		})
		if microfi.Classify(g, res, true).Outcome == faults.SDC {
			sdc++
		}
	}
	if sdc == 0 {
		t.Error("no post-vote L2 flip produced a residual SDC; the §IV-B mechanism is broken")
	}
}

// TestHardwareMaskingDominates pins the reason for the AVF≪SVF gap: most
// microarchitecture-level injections are masked, while most software-level
// injections are not.
func TestHardwareMaskingDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns")
	}
	s := NewStudy(80, 13)
	tl, _, err := s.MicroTally("HotSpot", "K1", gpu.L1D, false)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Pct(faults.Masked) < 0.5 {
		t.Errorf("L1D injections should be mostly masked (clean-line eviction etc.), masked=%.2f", tl.Pct(faults.Masked))
	}
	st, err := s.SoftTally("HotSpot", "K1", softfi.SVF, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.FR() <= tl.FR() {
		t.Errorf("software-level FR (%.2f) should exceed L1D hardware FR (%.2f)", st.FR(), tl.FR())
	}
}

// TestSVFLDSubset: SVF-LD is a restriction of SVF; its candidate set must be
// a proper, non-empty subset for a memory-heavy kernel.
func TestSVFLDSubset(t *testing.T) {
	s := NewStudy(10, 1)
	e, err := s.Eval("NW")
	if err != nil {
		t.Fatal(err)
	}
	all := softfi.Target{Kernel: "K1", Mode: softfi.SVF}
	ld := softfi.Target{Kernel: "K1", Mode: softfi.SVFLD}
	a, l := all.Candidates(e.SoftG), ld.Candidates(e.SoftG)
	if l <= 0 || l >= a {
		t.Errorf("SVF-LD candidates %d must be a proper subset of %d", l, a)
	}
}

// TestEveryAppEvaluates builds golden runs (plain and TMR, both engines) for
// all 11 applications — the integration gate for the whole suite.
func TestEveryAppEvaluates(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs for 11 apps × 2 engines × 2 variants")
	}
	s := NewStudy(1, 1)
	for _, app := range s.Apps() {
		e, err := s.Eval(app.Name)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if err := app.Check(e.MicroG.Res.Output); err != nil {
			t.Errorf("%s: golden output wrong: %v", app.Name, err)
		}
		// the hardened job must produce the identical output
		if string(e.MicroGTMR.Res.Output) != string(e.MicroG.Res.Output) {
			t.Errorf("%s: TMR changed the fault-free output", app.Name)
		}
		if string(e.SoftGTMR.Res.Output) != string(e.SoftG.Res.Output) {
			t.Errorf("%s: TMR changed the functional output", app.Name)
		}
		// TMR must cost extra cycles
		if e.MicroGTMR.Res.Cycles <= e.MicroG.Res.Cycles {
			t.Errorf("%s: TMR did not increase cycles (%d → %d)",
				app.Name, e.MicroG.Res.Cycles, e.MicroGTMR.Res.Cycles)
		}
		// every declared kernel must have spans and windows in both engines
		for _, k := range app.Kernels {
			tgt := microfi.Target{Structure: gpu.RF, Kernel: k}
			if tgt.Windows(e.MicroG) <= 0 {
				t.Errorf("%s %s: no µarch injection window", app.Name, k)
			}
			st := softfi.Target{Kernel: k, Mode: softfi.SVF}
			if st.Candidates(e.SoftG) <= 0 {
				t.Errorf("%s %s: no software injection candidates", app.Name, k)
			}
		}
	}
}

// TestKernelCountMatchesPaper: 11 applications, 23 kernels (§II-D).
func TestKernelCountMatchesPaper(t *testing.T) {
	s := NewStudy(1, 1)
	apps := s.Apps()
	if len(apps) != 11 {
		t.Errorf("paper evaluates 11 benchmarks, have %d", len(apps))
	}
	if ids := s.KernelIDs(); len(ids) != 23 {
		t.Errorf("paper evaluates 23 kernels, have %d", len(ids))
	}
}

// TestStudyDeterminism: the same study parameters reproduce identical
// figure data.
func TestStudyDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns")
	}
	a := NewStudy(30, 9)
	b := NewStudy(30, 9)
	fa, _, err := a.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	fb, _, err := b.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("Figure 4 point %d differs across identical studies", i)
		}
	}
}
