// Tests for the selective-hardening study API and the advisor loop on the
// real measurement stack: boundary identity of selective points with the
// legacy plain/TMR campaigns, end-to-end advise runs on real apps, and the
// CI plan artifact.
package gpurel

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"gpurel/internal/advisor"
	"gpurel/internal/faultmodel"
	"gpurel/internal/gpu"
	"gpurel/internal/harden"
)

// TestSelectiveBoundaryIdentity is the satellite property test: selective
// campaigns with the full kernel set are bit-identical to the hardened
// (TMR) campaigns, and with the empty set bit-identical to the unhardened
// campaigns, across ≥3 apps and both storage and control fault models.
// Fresh studies on each side make this an identity of the whole pipeline
// (job transform, golden run, seeds, injection), not a memo artifact.
func TestSelectiveBoundaryIdentity(t *testing.T) {
	runs := envInt("GPUREL_SELECTIVE_RUNS", 10)
	apps := []string{"VA", "SCP", "NW"}
	cases := []struct {
		st    gpu.Structure
		fault faultmodel.Spec
	}{
		{gpu.RF, faultmodel.Spec{}}, // transient single-bit baseline
		{gpu.RF, faultmodel.Spec{Model: faultmodel.ModelStuck, Stuck: faultmodel.Ptr(1)}},
		{gpu.RF, faultmodel.Spec{Model: faultmodel.ModelMBU, Width: 2, Lines: 2}},
		{gpu.ControlStructures[0], faultmodel.Spec{Model: faultmodel.ModelControl}},
		{gpu.ControlStructures[0], faultmodel.Spec{Model: faultmodel.ModelControl, Stuck: faultmodel.Ptr(0)}},
	}

	for _, app := range apps {
		sel := NewStudy(runs, 11)
		ref := NewStudy(runs, 11)
		e, err := sel.Eval(app)
		if err != nil {
			t.Fatal(err)
		}
		all := e.App.Kernels
		for _, k := range all {
			for _, c := range cases {
				full, _, err := sel.MicroTallySelectiveModel(app, k, c.st, c.fault, all)
				if err != nil {
					t.Fatalf("%s/%s full-set: %v", app, k, err)
				}
				wantFull, err := ref.MicroTallyModelHardened(app, k, c.st, c.fault)
				if err != nil {
					t.Fatal(err)
				}
				if full != wantFull {
					t.Errorf("%s/%s %v %s: full-set selective %+v != TMR %+v",
						app, k, c.st, c.fault.Label(), full, wantFull)
				}

				empty, _, err := sel.MicroTallySelectiveModel(app, k, c.st, c.fault, nil)
				if err != nil {
					t.Fatalf("%s/%s empty-set: %v", app, k, err)
				}
				wantEmpty, err := ref.MicroTallyModel(app, k, c.st, c.fault)
				if err != nil {
					t.Fatal(err)
				}
				if empty != wantEmpty {
					t.Errorf("%s/%s %v %s: empty-set selective %+v != plain %+v",
						app, k, c.st, c.fault.Label(), empty, wantEmpty)
				}
			}
		}
	}
}

// TestSelectiveProperSubsetDistinct: a proper-subset campaign is a real
// third variant — its own seed, its own golden run, an overhead strictly
// between the plain job's and full TMR's.
func TestSelectiveProperSubsetDistinct(t *testing.T) {
	s := NewStudy(10, 3)
	e, err := s.Eval("SRADv1")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.App.Kernels) < 2 {
		t.Fatalf("SRADv1 has %d kernels, need ≥2", len(e.App.Kernels))
	}
	sub := e.App.Kernels[:1]

	o, err := s.SelectiveOverhead("SRADv1", sub)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.SelectiveOverhead("SRADv1", e.App.Kernels)
	if err != nil {
		t.Fatal(err)
	}
	if !(1 < o && o < full) {
		t.Errorf("subset overhead %.3f not strictly between 1 and full %.3f", o, full)
	}

	// Seeds: plain, subset, full-set (≡ hardened) are three distinct points;
	// spellings and orderings of the same subset collide.
	base := PointSpec{Layer: LayerMicro, App: "SRADv1", Kernel: sub[0], Structure: gpu.RF}
	withSet := func(set []string) PointSpec {
		p := base
		p.Harden = set
		return p
	}
	plain, subset := PointSeed(1, base), PointSeed(1, withSet(sub))
	hardenedSpec := base
	hardenedSpec.Hardened = true
	hard := PointSeed(1, hardenedSpec)
	if plain == subset || subset == hard || plain == hard {
		t.Errorf("seeds not distinct: plain %d subset %d hardened %d", plain, subset, hard)
	}
	if PointSeed(1, withSet([]string{sub[0], sub[0]})) != subset {
		t.Error("duplicate-kernel spelling changed the subset seed")
	}

	// The set helper agrees with the study's normalization.
	if !harden.NewSet(e.App.Kernels...).Covers(e.Job) {
		t.Error("full kernel set does not cover the job")
	}
}

// advisorE2ECases are the acceptance end-to-end configurations: fixed
// runs/seed (the advisor is deterministic, so these pin the whole run) and
// a budget fraction between the full-TMR and unhardened SDC positions.
var advisorE2ECases = []struct {
	app  string
	runs int
	seed int64
	frac float64
}{
	{app: "SRADv1", runs: 8, seed: 17, frac: 0.5},
	{app: "K-Means", runs: 20, seed: 5, frac: 0.75},
}

// TestAdvisorEndToEnd is the acceptance e2e: on SRADv1 and K-Means the
// advisor emits a proper-subset plan whose verified SDC meets the budget at
// a measured overhead strictly below full TMR.
func TestAdvisorEndToEnd(t *testing.T) {
	for _, tc := range advisorE2ECases {
		s := NewStudy(tc.runs, tc.seed)
		plain, err := s.AppAVF(tc.app, false)
		if err != nil {
			t.Fatal(err)
		}
		hard, err := s.AppAVF(tc.app, true)
		if err != nil {
			t.Fatal(err)
		}
		if plain.SDC <= hard.SDC {
			t.Fatalf("%s: plain SDC %.4f not above hardened %.4f — campaign too small to advise",
				tc.app, plain.SDC, hard.SDC)
		}
		budget := hard.SDC + tc.frac*(plain.SDC-hard.SDC)

		st, err := s.Advise(tc.app, budget)
		if err != nil {
			t.Fatalf("%s: advise: %v", tc.app, err)
		}
		if st.Phase != "done" || st.Plan == nil || st.Verification == nil {
			t.Fatalf("%s: incomplete state %+v", tc.app, st)
		}
		v := st.Verification
		if !v.Pass || v.SDC > budget {
			t.Errorf("%s: verified SDC %.4f exceeds budget %.4f", tc.app, v.SDC, budget)
		}
		if v.Overhead >= v.FullOverhead {
			t.Errorf("%s: overhead %.3f not strictly below full TMR %.3f", tc.app, v.Overhead, v.FullOverhead)
		}
		if n := len(st.Plan.Protect); n == 0 || n >= len(st.Measures) {
			t.Errorf("%s: plan protects %d of %d kernels — not a proper subset", tc.app, n, len(st.Measures))
		}
		if v.TotalRuns == 0 {
			t.Errorf("%s: verification spent no runs", tc.app)
		}
	}
}

// TestAdvisorDeterminism: a fresh study reproduces the identical plan and
// verification (the property the journal/resume path relies on).
func TestAdvisorDeterminism(t *testing.T) {
	tc := advisorE2ECases[0]
	budgets := func(s *Study) float64 {
		plain, err := s.AppAVF(tc.app, false)
		if err != nil {
			t.Fatal(err)
		}
		hard, err := s.AppAVF(tc.app, true)
		if err != nil {
			t.Fatal(err)
		}
		return hard.SDC + tc.frac*(plain.SDC-hard.SDC)
	}
	s1 := NewStudy(tc.runs, tc.seed)
	st1, err := s1.Advise(tc.app, budgets(s1))
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStudy(tc.runs, tc.seed)
	st2, err := s2.Advise(tc.app, budgets(s2))
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := json.Marshal(st1)
	p2, _ := json.Marshal(st2)
	if string(p1) != string(p2) {
		t.Errorf("advise not reproducible:\n%s\n%s", p1, p2)
	}
}

// TestAdvisorPlansArtifact generates the advisor-plan artifact for CI: one
// plan + verification per app, written as JSON when GPUREL_ADVISOR_JSON
// names a path.
func TestAdvisorPlansArtifact(t *testing.T) {
	if os.Getenv("GPUREL_ADVISOR_JSON") == "" {
		t.Skip("set GPUREL_ADVISOR_JSON to emit the advisor plan artifact")
	}
	type entry struct {
		App    string  `json:"app"`
		Budget float64 `json:"budget"`
		State  any     `json:"state"`
	}
	var out []entry
	for _, tc := range advisorE2ECases {
		s := NewStudy(tc.runs, tc.seed)
		plain, err := s.AppAVF(tc.app, false)
		if err != nil {
			t.Fatal(err)
		}
		hard, err := s.AppAVF(tc.app, true)
		if err != nil {
			t.Fatal(err)
		}
		budget := hard.SDC + tc.frac*(plain.SDC-hard.SDC)
		st, err := s.Advise(tc.app, budget)
		if err != nil {
			t.Fatalf("%s: %v", tc.app, err)
		}
		out = append(out, entry{App: tc.app, Budget: budget, State: st})
	}
	raw, err := json.MarshalIndent(map[string]any{"table": "advisor_plans", "plans": out}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(os.Getenv("GPUREL_ADVISOR_JSON"), append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// noPreRank hides the StudyBackend's PreRanker capability: the embedded
// interface value forwards every Backend method but the wrapper type itself
// has no PreRank method, so the runner's capability check fails.
type noPreRank struct{ advisor.Backend }

// TestAdvisorPreRankPlanUnchangedOnStudy pins the tentpole consumer
// contract on the real measurement stack: the static pre-ranking stage
// reorders measurement and journals the bounds, but the plan and
// verification are bit-identical to the seed behaviour (same backend with
// the capability hidden).
func TestAdvisorPreRankPlanUnchangedOnStudy(t *testing.T) {
	tc := advisorE2ECases[0]
	budget := func(s *Study) float64 {
		plain, err := s.AppAVF(tc.app, false)
		if err != nil {
			t.Fatal(err)
		}
		hard, err := s.AppAVF(tc.app, true)
		if err != nil {
			t.Fatal(err)
		}
		return hard.SDC + tc.frac*(plain.SDC-hard.SDC)
	}

	s1 := NewStudy(tc.runs, tc.seed)
	ranked, err := s1.Advise(tc.app, budget(s1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked.PreRank) == 0 {
		t.Fatal("study advise recorded no static pre-ranks")
	}
	someExposure := false
	for _, r := range ranked.PreRank {
		if !(0 <= r.Lower && r.Lower <= r.Upper && r.Upper <= 1) {
			t.Fatalf("pre-rank %+v not a sane [0,1] bracket", r)
		}
		if r.Upper > 0 {
			someExposure = true
		}
	}
	if !someExposure {
		t.Fatal("every kernel statically dead — bounds implausible")
	}

	s2 := NewStudy(tc.runs, tc.seed)
	r := &advisor.Runner{Backend: noPreRank{&StudyBackend{Study: s2}}, App: tc.app, Budget: budget(s2)}
	seedSt, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if seedSt.PreRank != nil {
		t.Fatal("hidden capability still produced pre-ranks")
	}
	p1, _ := json.Marshal(ranked.Plan)
	p2, _ := json.Marshal(seedSt.Plan)
	if string(p1) != string(p2) {
		t.Errorf("pre-ranking changed the plan:\n%s\n%s", p1, p2)
	}
	v1, _ := json.Marshal(ranked.Verification)
	v2, _ := json.Marshal(seedSt.Verification)
	if string(v1) != string(v2) {
		t.Errorf("pre-ranking changed the verification:\n%s\n%s", v1, v2)
	}
}
